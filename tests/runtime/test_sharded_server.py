"""The multi-reactor sharding layer: placement policies (unit),
placement totality (property), and the sharded server end-to-end over
real sockets — including the cross-shard drain barrier."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import ServerFixture, wait_until
from repro.runtime import (
    ConnectionHashPolicy,
    LeastConnectionsPolicy,
    ReactorShard,
    RoundRobinPolicy,
    RuntimeConfig,
    ServerHooks,
    ShardedReactorServer,
    make_shard_policy,
)


class FakeHandle:
    """The only part of a handle a policy may look at: the peer name."""

    def __init__(self, name=""):
        self.name = name


class UpperHooks(ServerHooks):
    def decode(self, raw, conn):
        return raw.strip().decode()

    def handle(self, request, conn):
        return request.upper()

    def encode(self, result, conn):
        return result.encode() + b"\n"


# -- policy units ----------------------------------------------------------

def test_round_robin_strict_rotation():
    policy = RoundRobinPolicy(4)
    picks = [policy.pick(FakeHandle()) for _ in range(10)]
    assert picks == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]


def test_connection_hash_affinity_is_stable():
    policy = ConnectionHashPolicy(4)
    expected = zlib.crc32(b"10.0.0.7") % 4
    # Same client host, different ephemeral ports: same shard, and the
    # shard is the CRC32 bucket (stable across processes, unlike hash()).
    assert policy.pick(FakeHandle("10.0.0.7:1234")) == expected
    assert policy.pick(FakeHandle("10.0.0.7:9999")) == expected
    # A handle with no peer name still lands on exactly one shard.
    assert 0 <= policy.pick(FakeHandle("")) < 4


def test_least_connections_tracks_churn():
    counts = [3, 1, 2]
    policy = LeastConnectionsPolicy(
        3, loads=[lambda i=i: counts[i] for i in range(3)])
    assert policy.pick(FakeHandle()) == 1
    counts[1] = 5                        # shard 1 fills up...
    assert policy.pick(FakeHandle()) == 2
    counts[0] = counts[2] = 0            # ...ties go to the lowest id
    assert policy.pick(FakeHandle()) == 0


def test_make_shard_policy_factory():
    assert isinstance(make_shard_policy("round-robin", 2), RoundRobinPolicy)
    assert isinstance(make_shard_policy("hash", 2), ConnectionHashPolicy)
    assert isinstance(
        make_shard_policy("least-connections", 2, loads=[int, int]),
        LeastConnectionsPolicy)
    with pytest.raises(ValueError):
        make_shard_policy("least-connections", 2)   # needs load probes
    with pytest.raises(ValueError):
        make_shard_policy("power-of-two", 2)


# -- placement totality (property) -----------------------------------------

@settings(deadline=None)
@given(
    shard_count=st.integers(min_value=1, max_value=8),
    peers=st.lists(st.from_regex(r"[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}"
                                 r"\.[0-9]{1,3}:[0-9]{1,5}", fullmatch=True),
                   max_size=50),
    policy_name=st.sampled_from(["round-robin", "least-connections",
                                 "connection-hash"]),
)
def test_every_connection_lands_on_exactly_one_shard(shard_count, peers,
                                                     policy_name):
    """The placement invariant behind ``accepted_per_shard``: each pick
    is one in-range index, so the per-shard counts always sum to the
    number of connections — under churn, for every policy."""
    counts = [0] * shard_count
    policy = make_shard_policy(
        policy_name, shard_count,
        loads=[lambda i=i: counts[i] for i in range(shard_count)])
    for peer in peers:
        index = policy.pick(FakeHandle(peer))
        assert isinstance(index, int) and 0 <= index < shard_count
        counts[index] += 1
    assert sum(counts) == len(peers)
    if policy_name == "round-robin":
        assert max(counts) - min(counts) <= 1


# -- the sharded server over real sockets ----------------------------------

def test_sharded_server_round_robin_placement_and_serving():
    cfg = RuntimeConfig(async_completions=False)
    with ServerFixture(ShardedReactorServer(UpperHooks(), cfg,
                                            shards=4)) as srv:
        for i in range(8):
            assert srv.request(f"word{i}\n".encode()) == \
                f"WORD{i}\n".encode().upper()
        server = srv.server
        wait_until(lambda: sum(server.accepted_per_shard) == 8,
                   message=f"placed {server.accepted_per_shard}")
        # Sequential connections under round-robin: perfectly uniform,
        # and adoption bookkeeping agrees with the accept plane's.
        assert server.accepted_per_shard == [2, 2, 2, 2]
        assert [s.adopted for s in server.shards] == [2, 2, 2, 2]
        assert all(isinstance(s, ReactorShard) for s in server.shards)


def test_connection_hash_sends_one_client_to_one_shard():
    cfg = RuntimeConfig(async_completions=False)
    with ServerFixture(ShardedReactorServer(UpperHooks(), cfg, shards=4,
                                            policy="connection-hash")) as srv:
        for i in range(6):
            assert srv.request(b"hi\n") == b"HI\n"
        server = srv.server
        wait_until(lambda: sum(server.accepted_per_shard) == 6,
                   message=f"placed {server.accepted_per_shard}")
        # All connections come from 127.0.0.1 — affinity puts every one
        # of them on the same single shard.
        assert sorted(server.accepted_per_shard) == [0, 0, 0, 6]


def test_drain_quiesces_every_shard():
    cfg = RuntimeConfig(async_completions=False, drain_timeout=5.0)
    with ServerFixture(ShardedReactorServer(UpperHooks(), cfg,
                                            shards=3)) as srv:
        for _ in range(6):
            assert srv.request(b"x\n") == b"X\n"
        server = srv.server
        assert server.drain() is True
        srv.mark_stopped()
        assert all(shard._quiescent() for shard in server.shards)
        assert server.open_connections == 0


def test_sharded_status_fields_are_complete_and_aggregate_once():
    """The ?auto completeness contract: every scalar a shard registers
    appears exactly once in the aggregate section (summed — averaged
    for rates) and once per shard under a ``shard="i"`` label,
    including the O15 buffer-pool hit-rate gauge."""
    import math

    from repro.obs import status_fields

    #: Apache-style fields derived from the aggregates; a shard's own
    #: copy of these must NOT leak into the per-shard section
    derived = {"Total Accesses", "Total Connections", "BusyWorkers",
               "CacheHitRate", "Uptime", "Total kBytes", "ReqPerSec",
               "BytesPerSec"}
    cfg = RuntimeConfig(async_completions=False, profiling=True,
                        write_path="zerocopy", sample_interval=0.05)
    with ServerFixture(ShardedReactorServer(UpperHooks(), cfg,
                                            shards=2)) as srv:
        for _ in range(4):
            assert srv.request(b"z\n") == b"Z\n"
        server = srv.server
        wait_until(lambda: sum(server.accepted_per_shard) == 4,
                   message=f"placed {server.accepted_per_shard}")
        wait_until(lambda: server.open_connections == 0,
                   message="connections still closing")

        fields = server.status_fields()
        keys = [key for key, _value in fields]
        assert len(keys) == len(set(keys)), "duplicate status keys"
        field_map = dict(fields)

        per_shard = [dict(status_fields(shard.registry))
                     for shard in server.shards]
        scalar_keys = [key for key in per_shard[0]
                       if key not in derived
                       and not key.rsplit("-", 1)[-1] in
                       ("count", "p50", "p90", "p99")]
        assert "server_buffer_pool_hit_rate" in scalar_keys

        for key in scalar_keys:
            # once per shard, re-labelled...
            for index in range(len(server.shards)):
                if "{" in key:
                    close = key.index("}")
                    labelled = (key[:close] + f',shard="{index}"'
                                + key[close:])
                else:
                    labelled = key + f'{{shard="{index}"}}'
                assert labelled in field_map, labelled
            # ...and exactly once at the aggregate level: the sum of
            # the per-shard values, except rates, which average.
            values = [float(shard_fields[key])
                      for shard_fields in per_shard]
            expected = (sum(values) / len(values) if "rate" in key
                        else sum(values))
            assert math.isclose(float(field_map[key]), expected,
                                rel_tol=1e-6, abs_tol=1e-9), key

        # Histogram quantiles stay per-shard only (they do not merge).
        for index in range(len(server.shards)):
            assert (f'server_request_seconds{{shard="{index}"}}-count'
                    in field_map)
        assert "server_request_seconds-count" not in field_map
        # The pool hit rate is a rate: averaged, so still within [0, 1].
        assert 0.0 <= float(
            field_map["server_buffer_pool_hit_rate"]) <= 1.0


def test_sharded_status_fields_aggregate_per_shard():
    cfg = RuntimeConfig(async_completions=False, profiling=True)
    with ServerFixture(ShardedReactorServer(UpperHooks(), cfg,
                                            shards=2)) as srv:
        for _ in range(4):
            assert srv.request(b"y\n") == b"Y\n"
        server = srv.server
        wait_until(lambda: sum(server.accepted_per_shard) == 4,
                   message=f"placed {server.accepted_per_shard}")
        fields = dict(server.status_fields())
        assert fields["Shards"] == "2"
        assert float(fields["server_connections_accepted_total"]) == 4
        per_shard = [k for k in fields if 'shard="' in k]
        assert per_shard, "no per-shard labelled fields in the report"
        report = server.status_report(auto=True)
        assert "Shards: 2" in report
