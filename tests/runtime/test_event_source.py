"""Tests for the Decorator-pattern event sources."""

import socket
import threading
import time

import pytest

from harness import FakeClock
from repro.runtime import (
    EventKind,
    ListenHandle,
    NullEventSource,
    QueueEventSource,
    SocketEventSource,
    SocketHandle,
    TimerEventSource,
    UserEvent,
)


def poll_until(source, want, timeout=2.0):
    """Poll until at least one event of each wanted kind arrives."""
    found = {}
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline and not all(k in found for k in want):
        for ev in source.poll(0.05):
            found.setdefault(ev.kind, ev)
    return found


# -- SocketEventSource -----------------------------------------------------------


def test_accept_event_on_incoming_connection():
    src = SocketEventSource()
    listen = ListenHandle()
    src.register(listen)
    client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
    try:
        found = poll_until(src, [EventKind.ACCEPT])
        assert EventKind.ACCEPT in found
        assert found[EventKind.ACCEPT].handle is listen
    finally:
        client.close()
        listen.close()
        src.close()


def test_readable_event_on_data():
    src = SocketEventSource()
    listen = ListenHandle()
    src.register(listen)
    client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
    try:
        poll_until(src, [EventKind.ACCEPT])
        server_side = listen.try_accept()
        assert server_side is not None
        src.register(server_side)
        client.sendall(b"ping")
        found = poll_until(src, [EventKind.READABLE])
        assert found[EventKind.READABLE].handle is server_side
        assert server_side.try_recv() == b"ping"
    finally:
        client.close()
        listen.close()
        src.close()


def test_writable_only_when_buffered_output():
    src = SocketEventSource()
    listen = ListenHandle()
    src.register(listen)
    client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
    try:
        poll_until(src, [EventKind.ACCEPT])
        server_side = listen.try_accept()
        src.register(server_side)
        # No output buffered: no writable events.
        events = src.poll(0.05)
        assert not any(e.kind == EventKind.WRITABLE for e in events)
        server_side.out_buffer.extend(b"reply")
        src.update_interest(server_side)
        found = poll_until(src, [EventKind.WRITABLE])
        assert EventKind.WRITABLE in found
    finally:
        client.close()
        listen.close()
        src.close()


def test_pause_suppresses_readable_and_resume_restores():
    src = SocketEventSource()
    listen = ListenHandle()
    src.register(listen)
    client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
    try:
        poll_until(src, [EventKind.ACCEPT])
        server_side = listen.try_accept()
        src.register(server_side)
        client.sendall(b"data")
        poll_until(src, [EventKind.READABLE])
        src.pause(server_side)
        assert not any(e.kind == EventKind.READABLE for e in src.poll(0.05))
        src.resume(server_side)
        found = poll_until(src, [EventKind.READABLE])
        assert EventKind.READABLE in found
    finally:
        client.close()
        listen.close()
        src.close()


def test_wakeup_interrupts_blocking_poll():
    src = SocketEventSource()
    durations = []
    entered = threading.Event()

    def poller():
        start = time.monotonic()
        entered.set()
        src.poll(2.0)
        durations.append(time.monotonic() - start)

    t = threading.Thread(target=poller)
    t.start()
    # Even if wakeup lands before poll starts, the self-pipe byte makes
    # the poll return immediately — no sleep-and-hope needed.
    entered.wait(1.0)
    src.wakeup()
    t.join(timeout=3.0)
    src.close()
    assert durations and durations[0] < 1.0


def test_deregister_stops_events():
    src = SocketEventSource()
    listen = ListenHandle()
    src.register(listen)
    src.deregister(listen)
    client = None
    try:
        client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
        events = src.poll(0.1)
        assert not any(e.kind == EventKind.ACCEPT for e in events)
    finally:
        if client:
            client.close()
        listen.close()
        src.close()


def test_register_rejects_non_socket_handle():
    src = SocketEventSource()
    with pytest.raises(TypeError):
        src.register(object())
    src.close()


# -- TimerEventSource ----------------------------------------------------------


def test_timer_fires_after_delay():
    src = TimerEventSource(NullEventSource())
    src.schedule(0.05, payload="tick")
    found = poll_until(src, [EventKind.TIMER])
    assert found[EventKind.TIMER].payload == "tick"


def test_timer_not_early():
    src = TimerEventSource(NullEventSource())
    src.schedule(0.5, payload="late")
    events = src.poll(0.01)
    assert not any(e.kind == EventKind.TIMER for e in events)


def test_timer_cancel():
    clock = FakeClock()
    src = TimerEventSource(NullEventSource(), clock=clock)
    token = src.schedule(0.05, payload="nope")
    src.cancel(token)
    clock.advance(0.2)  # well past the cancelled deadline
    events = src.poll(0.01)
    assert not any(e.kind == EventKind.TIMER for e in events)


def test_timer_negative_delay_rejected():
    src = TimerEventSource(NullEventSource())
    with pytest.raises(ValueError):
        src.schedule(-1.0)


def test_timer_ordering():
    src = TimerEventSource(NullEventSource())
    src.schedule(0.02, payload="first")
    src.schedule(0.05, payload="second")
    got = []
    deadline = time.monotonic() + 1.0
    while len(got) < 2 and time.monotonic() < deadline:
        got.extend(e.payload for e in src.poll(0.02)
                   if e.kind == EventKind.TIMER)
    assert got == ["first", "second"]


# -- QueueEventSource ------------------------------------------------------------


def test_queue_source_delivers_posted_events():
    src = QueueEventSource(NullEventSource())
    src.post(UserEvent(payload="app-event"))
    events = src.poll(0.01)
    assert [e.payload for e in events if e.kind == EventKind.USER] == ["app-event"]


def test_queue_source_pending_count():
    src = QueueEventSource(NullEventSource())
    src.post(UserEvent())
    src.post(UserEvent())
    assert src.pending() == 2
    src.poll(0.0)
    assert src.pending() == 0


def test_decorator_chain_merges_all_sources():
    chain = QueueEventSource(TimerEventSource(NullEventSource()))
    chain.inner.schedule(0.01, payload="timer")
    chain.post(UserEvent(payload="user"))
    kinds = set()
    deadline = time.monotonic() + 1.0
    while len(kinds) < 2 and time.monotonic() < deadline:
        kinds |= {e.kind for e in chain.poll(0.02)}
    assert EventKind.TIMER in kinds and EventKind.USER in kinds


def test_null_source_rejects_handles():
    with pytest.raises(TypeError):
        NullEventSource().register(object())
