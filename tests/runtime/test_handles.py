"""Unit tests for socket/listen/file handles."""

import os
import socket

import pytest

from repro.runtime import FileHandle, ListenHandle, SocketHandle


def make_pair():
    listen = ListenHandle()
    client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
    server_side = None
    deadline = 50
    while server_side is None and deadline:
        server_side = listen.try_accept()
        deadline -= 1
    return listen, client, server_side


def test_listen_handle_binds_ephemeral_port():
    listen = ListenHandle()
    assert listen.port > 0
    assert listen.name == f"listen:{listen.port}"
    listen.close()
    assert listen.closed


def test_try_accept_returns_none_without_pending():
    listen = ListenHandle()
    assert listen.try_accept() is None
    listen.close()


def test_accept_returns_socket_handle():
    listen, client, server_side = make_pair()
    try:
        assert isinstance(server_side, SocketHandle)
        assert not server_side.closed
    finally:
        client.close()
        server_side.close()
        listen.close()


def test_handle_cls_factory():
    class Custom(SocketHandle):
        pass

    listen = ListenHandle(handle_cls=Custom)
    client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
    server_side = None
    for _ in range(50):
        server_side = listen.try_accept()
        if server_side:
            break
    try:
        assert isinstance(server_side, Custom)
    finally:
        client.close()
        server_side.close()
        listen.close()


def test_try_recv_nonblocking_and_eof():
    listen, client, server_side = make_pair()
    try:
        assert server_side.try_recv() is None        # nothing yet
        client.sendall(b"data")
        got = None
        for _ in range(100):
            got = server_side.try_recv()
            if got:
                break
        assert got == b"data"
        client.close()
        eof = None
        for _ in range(100):
            eof = server_side.try_recv()
            if eof == b"":
                break
        assert eof == b""                            # orderly EOF
    finally:
        server_side.close()
        listen.close()


def test_try_send_flushes_buffer():
    listen, client, server_side = make_pair()
    try:
        server_side.out_buffer.extend(b"reply")
        assert server_side.wants_write
        sent = server_side.try_send()
        assert sent == 5
        assert not server_side.wants_write
        client.settimeout(2)
        assert client.recv(5) == b"reply"
    finally:
        client.close()
        server_side.close()
        listen.close()


def test_try_send_empty_buffer_is_zero():
    listen, client, server_side = make_pair()
    try:
        assert server_side.try_send() == 0
    finally:
        client.close()
        server_side.close()
        listen.close()


def test_close_idempotent():
    listen, client, server_side = make_pair()
    client.close()
    server_side.close()
    server_side.close()
    assert server_side.closed
    listen.close()


def test_file_handle_reads(tmp_path):
    path = tmp_path / "blob.bin"
    payload = bytes(range(256)) * 4
    path.write_bytes(payload)
    fh = FileHandle(str(path))
    try:
        assert fh.size == len(payload)
        assert fh.read_all() == payload
        assert fh.read_at(10, 5) == payload[10:15]
        assert fh.name == str(path)
    finally:
        fh.close()
    assert fh.closed


def test_file_handle_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        FileHandle(str(tmp_path / "nope"))
