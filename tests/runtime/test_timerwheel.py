"""Property suite: the hashed timer wheel vs a sorted-list reference.

The wheel (``repro.runtime.timerwheel``) replaced the O(n) scan-based
timer paths; these tests pin the contract the reaper, the deadline
monitor and ``TimerEventSource`` rely on, by replaying a random
schedule/cancel/advance trace against both the wheel and a trivially
correct sorted-list model:

* **never early** — nothing fires before its deadline;
* **never lost** — once ``now`` passes a live entry's deadline by a
  full tick, the next ``advance`` fires it;
* **cancel idempotent** — cancelling twice, or after the fire, is a
  no-op and never disturbs other entries;
* **deterministic order** — a batch fires sorted by (deadline, token).
"""

import threading

from hypothesis import given, settings, strategies as st

from harness import FakeClock
from repro.runtime import TimerWheel

TICK = 0.01
SLOTS = 16  # small ring: traces wrap it many times


class SortedListModel:
    """The obviously correct reference: a flat list, scanned whole."""

    def __init__(self):
        self.live = {}  # token -> deadline

    def schedule(self, token, deadline):
        self.live[token] = deadline

    def cancel(self, token):
        return self.live.pop(token, None) is not None

    def due(self, now):
        fired = sorted((deadline, token)
                       for token, deadline in self.live.items()
                       if deadline <= now)
        for _, token in fired:
            del self.live[token]
        return fired


# One trace step: arm a timer, cancel a random earlier token (hitting
# fired/cancelled/unknown ones on purpose), or advance the clock.
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"),
                  st.floats(min_value=0.0, max_value=TICK * SLOTS * 3)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=40)),
        st.tuples(st.just("advance"),
                  st.floats(min_value=0.0, max_value=TICK * SLOTS * 2)),
    ),
    min_size=1, max_size=60)


@settings(max_examples=200, deadline=None)
@given(_steps)
def test_wheel_matches_sorted_list_model(steps):
    clock = FakeClock()
    wheel = TimerWheel(tick=TICK, slots=SLOTS, clock=clock)
    model = SortedListModel()
    fired_tokens = set()

    def drain(now):
        fired = wheel.advance()
        # never early
        assert all(deadline <= now for deadline, _, _ in fired)
        # deterministic batch order
        assert fired == sorted(fired)
        for deadline, token, _payload in fired:
            assert token not in fired_tokens, "double fire"
            fired_tokens.add(token)
            assert model.cancel(token), (
                f"wheel fired {token} the model considers dead")
        # never lost: anything the model says is overdue by >= one
        # whole tick must have just fired (sub-tick lateness is the
        # wheel's documented granularity)
        overdue = [t for t, d in model.live.items() if d <= now - TICK]
        assert not overdue, f"lost timers {overdue}"

    for kind, value in steps:
        if kind == "schedule":
            token = wheel.schedule(value)
            model.schedule(token, clock() + value)
        elif kind == "cancel":
            cancelled = wheel.cancel(value)
            assert cancelled == model.cancel(value)
            # idempotent: the second cancel is always a no-op
            assert wheel.cancel(value) is False
        else:
            clock.advance(value)
            drain(clock())
        assert len(wheel) == len(model.live)

    # final drain far in the future must flush every survivor
    clock.advance(TICK * (SLOTS * 4 + 2))
    drain(clock())
    assert len(wheel) == 0 and not model.live


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.0, max_value=TICK * SLOTS * 2),
       st.floats(min_value=0.0, max_value=TICK * SLOTS * 2))
def test_rearm_is_cancel_plus_schedule(first, second):
    """The reaper's touch path: cancel + schedule moves the deadline —
    exactly one fire, at the second deadline, never the first."""
    clock = FakeClock()
    wheel = TimerWheel(tick=TICK, slots=SLOTS, clock=clock)
    token = wheel.schedule(first, "a")
    wheel.cancel(token)
    token2 = wheel.schedule(second, "b")
    clock.advance(first + TICK)
    early = [p for _, t, p in wheel.advance() if t == token]
    assert not early, "cancelled arm still fired"
    clock.advance(max(0.0, second - first) + TICK)
    fired = wheel.advance()
    if second <= clock():
        assert any(t == token2 for _, t, _ in fired) or token2 not in (
            wheel._where)  # already fired in the first drain
    assert len(wheel) == 0


def test_cancel_after_fire_is_noop():
    clock = FakeClock()
    wheel = TimerWheel(tick=TICK, slots=SLOTS, clock=clock)
    token = wheel.schedule(0.005, "x")
    clock.advance(0.02)
    fired = wheel.advance()
    assert [(t, p) for _, t, p in fired] == [(token, "x")]
    assert wheel.cancel(token) is False
    assert wheel.cancel(token) is False


def test_next_deadline_is_fire_boundary_not_raw_deadline():
    """Poll loops sleep until next_deadline(): it must be the tick
    boundary the entry actually fires at (>= the raw deadline), or the
    loop wakes, fires nothing, and spins."""
    clock = FakeClock()
    wheel = TimerWheel(tick=TICK, slots=SLOTS, clock=clock)
    wheel.schedule(0.0151, "x")
    boundary = wheel.next_deadline()
    assert boundary is not None and boundary >= 0.0151
    clock.advance(boundary - clock())
    assert [p for _, _, p in wheel.advance()] == ["x"]
    assert wheel.next_deadline() is None


def test_concurrent_rearm_under_threads():
    """The reaper re-arms from the dispatcher thread while its own
    sweep thread advances: no lost, no double fires, no exceptions.
    (With REPRO_RACE_DETECTOR=1 the ambient fixture also watches the
    lockset discipline.)"""
    wheel = TimerWheel(tick=0.0005, slots=32)
    fired = []
    fired_lock = threading.Lock()
    stop = threading.Event()

    def advancer():
        while not stop.is_set():
            batch = wheel.advance()
            with fired_lock:
                fired.extend(token for _, token, _ in batch)

    def rearmer(worker):
        token = None
        for _ in range(300):
            if token is not None:
                wheel.cancel(token)
            token = wheel.schedule(0.0003, worker)
        if token is not None:
            wheel.cancel(token)

    threads = [threading.Thread(target=advancer)] + [
        threading.Thread(target=rearmer, args=(i,)) for i in range(4)]
    for t in threads[1:]:
        t.start()
    threads[0].start()
    for t in threads[1:]:
        t.join(timeout=10)
    stop.set()
    threads[0].join(timeout=10)
    leftovers = wheel.advance()
    with fired_lock:
        assert len(fired) == len(set(fired)), "double fire"
    assert len(wheel) == 0 or not leftovers
