"""Property-based tests for the zero-copy write path (option O15).

* the pool never hands out a buffer whose storage is still checked out;
* released buffers are reused (that is the point of pooling);
* size-class selection and retention bounds;
* an adversarial short-write socket drains a segmented OutBuffer to
  exactly the concatenated payload, releasing every pooled owner;
* the OutBuffer's bytearray-compatible surface matches a bytes model.
"""

from collections import deque

from hypothesis import given, settings, strategies as st
import pytest

from repro.runtime.buffers import (
    BufferPool,
    OutBuffer,
    PooledBuffer,
    segment_bytes,
)
from repro.runtime.handles import SocketHandle

PAYLOAD = st.binary(max_size=300)
#: segment kind: plain bytes, a memoryview over bytes, or a pooled head
KIND = st.sampled_from(["bytes", "view", "pooled"])


# -- BufferPool -----------------------------------------------------------


@given(ops=st.lists(
    st.tuples(st.sampled_from(["acquire", "release"]),
              st.integers(min_value=0, max_value=70000),
              st.integers(min_value=0, max_value=9)),
    max_size=120))
@settings(max_examples=80, deadline=None)
def test_pool_never_hands_out_checked_out_storage(ops):
    pool = BufferPool(classes=(64, 256, 1024), per_class=3)
    held = []
    for op, size, pick in ops:
        if op == "acquire":
            buf = pool.acquire(size)
            assert buf.in_use
            assert buf.capacity >= size
            assert all(buf is not other for other in held)
            assert all(buf.data is not other.data for other in held)
            held.append(buf)
        elif held:
            buf = held.pop(pick % len(held))
            buf.release()
            assert not buf.in_use
    assert pool.stats.acquires == pool.stats.hits + pool.stats.misses
    assert pool.stats.releases <= pool.stats.acquires


def test_released_buffer_is_reused():
    pool = BufferPool(classes=(64,), per_class=4)
    a = pool.acquire(10)
    assert pool.stats.misses == 1
    a.release()
    b = pool.acquire(20)
    assert b is a
    assert b.used == 0 and b.in_use
    assert pool.stats.hits == 1
    assert pool.stats.hit_rate == 0.5


def test_size_class_selection_and_oversize():
    pool = BufferPool(classes=(64, 256), per_class=2)
    assert pool.acquire(1).capacity == 64
    assert pool.acquire(64).capacity == 64
    assert pool.acquire(65).capacity == 256
    oversize = pool.acquire(1000)
    assert oversize.capacity == 1000  # exact-size one-shot
    oversize.release()
    assert pool.stats.discards == 1   # no class retains it
    assert pool.free_count() == 0


def test_release_errors():
    pool = BufferPool(classes=(64,))
    other = BufferPool(classes=(64,))
    buf = pool.acquire(8)
    buf.release()
    with pytest.raises(ValueError):
        buf.release()
    with pytest.raises(ValueError):
        other.release(pool.acquire(8))


def test_per_class_retention_bound():
    pool = BufferPool(classes=(64,), per_class=2)
    bufs = [pool.acquire(8) for _ in range(5)]
    for buf in bufs:
        buf.release()
    assert pool.free_count() == 2
    assert pool.stats.discards == 3


def test_pooled_write_overflow_raises():
    pool = BufferPool(classes=(8,))
    buf = pool.acquire(8)
    buf.write(b"12345678")
    with pytest.raises(ValueError):
        buf.write(b"x")


# -- OutBuffer drain under adversarial short writes -----------------------


class ShortWriteSock:
    """A socket double whose sendmsg accepts an adversarial number of
    bytes per call (then everything, so drains terminate)."""

    def __init__(self, caps):
        self.caps = deque(caps)
        self.sent = bytearray()

    def setblocking(self, flag):
        pass

    def getpeername(self):
        raise OSError("not connected")

    def sendmsg(self, iov):
        total = sum(len(v) for v in iov)
        n = min(self.caps.popleft(), total) if self.caps else total
        remaining = n
        for view in iov:
            take = min(len(view), remaining)
            self.sent += bytes(view[:take])
            remaining -= take
            if not remaining:
                break
        return n

    def close(self):
        pass


def _build(pool, segments):
    """Queue (kind, payload) segments on a fresh OutBuffer; returns the
    buffer, the expected concatenation and the pooled-segment count."""
    out = OutBuffer()
    expected = bytearray()
    pooled = 0
    for kind, payload in segments:
        if kind == "pooled":
            out.append_segment(pool.acquire(len(payload)).write(payload))
            pooled += 1
        elif kind == "view":
            out.append_segment(memoryview(payload))
        else:
            out.append_segment(payload)
        expected += payload
    return out, bytes(expected), pooled


@given(segments=st.lists(st.tuples(KIND, PAYLOAD), max_size=12),
       caps=st.lists(st.integers(min_value=0, max_value=97), max_size=40))
@settings(max_examples=100, deadline=None)
def test_short_write_drain_reproduces_payload_exactly(segments, caps):
    pool = BufferPool(classes=(64, 512), per_class=8)
    out, expected, pooled = _build(pool, segments)
    assert len(out) == len(expected)
    assert bytes(out) == expected

    handle = SocketHandle(ShortWriteSock(caps))
    handle.out_buffer = out
    stalls = 0
    while handle.out_buffer and stalls < len(caps) + 1:
        if handle.try_send() == 0:
            stalls += 1  # a 0-cap call sent nothing; caps are finite
    assert bytes(handle.sock.sent) == expected
    assert len(out) == 0 and not out
    # Every pooled head went back to the pool exactly once.
    assert pool.stats.releases == pooled


@given(segments=st.lists(st.tuples(KIND, PAYLOAD), max_size=10))
@settings(max_examples=60, deadline=None)
def test_clear_releases_every_pooled_owner(segments):
    pool = BufferPool(classes=(64, 512), per_class=8)
    out, _expected, pooled = _build(pool, segments)
    out.clear()
    assert len(out) == 0
    assert pool.stats.releases == pooled


def test_iov_is_capped_under_iov_max():
    out = OutBuffer()
    for i in range(100):
        out.append_segment(bytes([i]))
    assert len(out.iov()) == 64
    assert len(out.iov(max_vecs=3)) == 3
    assert len(out) == 100


# -- bytearray-compatible surface ----------------------------------------


@given(segments=st.lists(PAYLOAD, max_size=8),
       cut=st.integers(min_value=0, max_value=400),
       cap=st.integers(min_value=0, max_value=400))
@settings(max_examples=80, deadline=None)
def test_bytearray_surface_matches_bytes_model(segments, cut, cap):
    out = OutBuffer()
    model = bytearray()
    for payload in segments:
        out.extend(payload)
        model.extend(payload)
    assert bytes(out) == bytes(model)
    assert len(out) == len(model)
    assert bool(out) == bool(model)
    assert out[:cap] == bytes(model[:cap])
    del out[:cut]
    del model[:cut]
    assert bytes(out) == bytes(model)
    del out[:]
    del model[:]
    assert bytes(out) == b"" and len(out) == 0


def test_non_prefix_deletes_rejected():
    out = OutBuffer()
    out.extend(b"abcdef")
    with pytest.raises(TypeError):
        del out[2:4]
    with pytest.raises(TypeError):
        del out[:-1]
    with pytest.raises(TypeError):
        out[0]


def test_segment_bytes_covers_all_kinds():
    pool = BufferPool(classes=(64,))
    head = pool.acquire(3).write(b"abc")
    assert segment_bytes(head) == b"abc"
    assert segment_bytes(memoryview(b"xyz")) == b"xyz"
    assert segment_bytes(b"raw") == b"raw"
    assert segment_bytes(bytearray(b"ba")) == b"ba"


def test_mutable_segments_are_snapshotted():
    out = OutBuffer()
    data = bytearray(b"live")
    out.append_segment(data)
    data[:] = b"dead"
    assert bytes(out) == b"live"
