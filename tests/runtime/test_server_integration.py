"""Integration tests: ReactorServer over real sockets on localhost."""

import socket
import threading
import time

import pytest

from repro.runtime import (
    CLOSE,
    PENDING,
    ReactorServer,
    RuntimeConfig,
    ServerHooks,
)


def request_response(port, payload, expect_newlines=1, timeout=3.0):
    s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    s.settimeout(timeout)
    try:
        s.sendall(payload)
        buf = b""
        while buf.count(b"\n") < expect_newlines:
            chunk = s.recv(4096)
            if not chunk:
                break
            buf += chunk
        return buf
    finally:
        s.close()


class UpperHooks(ServerHooks):
    """Newline-framed uppercase server exercising decode/handle/encode."""

    def decode(self, raw, conn):
        return raw.strip().decode()

    def handle(self, request, conn):
        return request.upper()

    def encode(self, result, conn):
        return result.encode() + b"\n"


def test_echo_roundtrip():
    with ReactorServer(ServerHooks(), RuntimeConfig(use_codec=False,
                                                    async_completions=False)) as srv:
        assert request_response(srv.port, b"hello\n") == b"hello\n"


def test_codec_pipeline():
    with ReactorServer(UpperHooks(), RuntimeConfig(async_completions=False)) as srv:
        assert request_response(srv.port, b"hello\n") == b"HELLO\n"


def test_multiple_requests_one_connection():
    with ReactorServer(UpperHooks(), RuntimeConfig(async_completions=False)) as srv:
        s = socket.create_connection(("127.0.0.1", srv.port), timeout=3)
        s.settimeout(3)
        try:
            for word in (b"one", b"two", b"three"):
                s.sendall(word + b"\n")
                buf = b""
                while not buf.endswith(b"\n"):
                    buf += s.recv(4096)
                assert buf == word.upper() + b"\n"
        finally:
            s.close()


def test_concurrent_clients():
    with ReactorServer(UpperHooks(), RuntimeConfig(
            async_completions=False, processor_threads=4)) as srv:
        results = {}

        def client(i):
            results[i] = request_response(srv.port, f"client{i}\n".encode())

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert all(results[i] == f"CLIENT{i}".upper().encode() + b"\n"
                   for i in range(8))


def test_close_sentinel_drops_connection():
    class QuitHooks(ServerHooks):
        def handle(self, request, conn):
            return CLOSE if request.strip() == b"quit" else request

    with ReactorServer(QuitHooks(), RuntimeConfig(
            use_codec=False, async_completions=False)) as srv:
        s = socket.create_connection(("127.0.0.1", srv.port), timeout=3)
        s.settimeout(3)
        s.sendall(b"quit\n")
        assert s.recv(4096) == b""  # orderly close, no reply
        s.close()


def test_pending_async_reply():
    class AsyncHooks(ServerHooks):
        def handle(self, request, conn):
            threading.Timer(0.05, conn.complete_request,
                            args=(request.strip().upper() + b"\n",)).start()
            return PENDING

    with ReactorServer(AsyncHooks(), RuntimeConfig(
            use_codec=False, async_completions=False)) as srv:
        assert request_response(srv.port, b"later\n") == b"LATER\n"


def test_hook_exception_closes_connection_not_server():
    class Flaky(ServerHooks):
        def handle(self, request, conn):
            if request.strip() == b"die":
                raise RuntimeError("handler bug")
            return request

    with ReactorServer(Flaky(), RuntimeConfig(
            use_codec=False, async_completions=False, profiling=True)) as srv:
        # First connection crashes its handler...
        s = socket.create_connection(("127.0.0.1", srv.port), timeout=3)
        s.settimeout(3)
        s.sendall(b"die\n")
        assert s.recv(4096) == b""
        s.close()
        # ... but the server still serves new clients.
        assert request_response(srv.port, b"alive\n") == b"alive\n"
        assert srv.profiler.snapshot().errors == 1


def test_inline_reactor_without_processor_pool():
    cfg = RuntimeConfig(use_processor_pool=False, use_codec=False,
                        async_completions=False)
    with ReactorServer(ServerHooks(), cfg) as srv:
        assert srv.processor is None
        assert request_response(srv.port, b"inline\n") == b"inline\n"


def test_two_dispatcher_threads():
    cfg = RuntimeConfig(dispatcher_threads=2, use_codec=False,
                        async_completions=False)
    with ReactorServer(ServerHooks(), cfg) as srv:
        assert request_response(srv.port, b"dual\n") == b"dual\n"


def test_large_reply_flushes_through_writable_events():
    class BigHooks(ServerHooks):
        def handle(self, request, conn):
            return b"X" * 1_000_000 + b"\n"

    with ReactorServer(BigHooks(), RuntimeConfig(
            use_codec=False, async_completions=False)) as srv:
        s = socket.create_connection(("127.0.0.1", srv.port), timeout=5)
        s.settimeout(5)
        s.sendall(b"go\n")
        total = 0
        while total < 1_000_001:
            chunk = s.recv(65536)
            if not chunk:
                break
            total += len(chunk)
        s.close()
        assert total == 1_000_001


def test_max_connections_cap():
    cfg = RuntimeConfig(use_codec=False, async_completions=False,
                        max_connections=1)
    with ReactorServer(ServerHooks(), cfg) as srv:
        s1 = socket.create_connection(("127.0.0.1", srv.port), timeout=3)
        s1.settimeout(3)
        s1.sendall(b"first\n")
        buf = b""
        while not buf.endswith(b"\n"):
            buf += s1.recv(4096)
        # Second connection connects at TCP level (kernel backlog) but
        # the server never accepts it while the first is open.
        s2 = socket.create_connection(("127.0.0.1", srv.port), timeout=3)
        s2.settimeout(0.3)
        s2.sendall(b"second\n")
        with pytest.raises(socket.timeout):
            s2.recv(4096)
        s1.close()
        # After the first closes, the pending connection gets served.
        time.sleep(0.3)
        s2.settimeout(3)
        buf = b""
        try:
            while not buf.endswith(b"\n"):
                chunk = s2.recv(4096)
                if not chunk:
                    break
                buf += chunk
        except socket.timeout:
            pass
        s2.close()
        assert buf == b"second\n"


def test_idle_reaper_closes_idle_connections():
    cfg = RuntimeConfig(use_codec=False, async_completions=False,
                        shutdown_long_idle=True, idle_limit=0.2)
    with ReactorServer(ServerHooks(), cfg) as srv:
        s = socket.create_connection(("127.0.0.1", srv.port), timeout=3)
        s.settimeout(3)
        start = time.monotonic()
        assert s.recv(4096) == b""  # server reaps us
        assert time.monotonic() - start < 2.0
        s.close()
        assert srv.reaper.reaped == 1


def test_profiling_counts_bytes():
    with ReactorServer(ServerHooks(), RuntimeConfig(
            use_codec=False, async_completions=False, profiling=True)) as srv:
        request_response(srv.port, b"12345\n")
        time.sleep(0.1)
        snap = srv.profiler.snapshot()
        assert snap.bytes_read == 6
        assert snap.bytes_sent == 6
        assert snap.connections_accepted == 1


def test_debug_mode_traces_events():
    with ReactorServer(ServerHooks(), RuntimeConfig(
            use_codec=False, async_completions=False, debug_mode=True)) as srv:
        request_response(srv.port, b"traced\n")
        time.sleep(0.1)
        categories = {r.category for r in srv.tracer.records()}
        assert "read" in categories and "send" in categories


def test_event_scheduling_config_builds_priority_queue():
    from repro.runtime import QuotaPriorityQueue

    cfg = RuntimeConfig(use_codec=False, async_completions=False,
                        event_scheduling=True, scheduling_quotas={1: 4, 0: 1})
    with ReactorServer(ServerHooks(), cfg) as srv:
        assert isinstance(srv.processor.queue, QuotaPriorityQueue)
        assert request_response(srv.port, b"sched\n") == b"sched\n"


def test_file_cache_async_serving(tmp_path):
    (tmp_path / "page.html").write_bytes(b"<html>cached</html>")

    class FileHooks(ServerHooks):
        def handle(self, request, conn):
            server = conn.context["server"]
            path = request.strip().decode()
            server.file_io.read_file(
                path,
                act=__import__("repro.runtime", fromlist=["AsynchronousCompletionToken"]
                               ).AsynchronousCompletionToken(
                    on_complete=lambda ev: conn.complete_request(
                        (ev.payload if ev.ok else b"ERROR") + b"\n")),
            )
            return PENDING

    cfg = RuntimeConfig(use_codec=False, cache_policy="LRU",
                        document_root=str(tmp_path))
    with ReactorServer(FileHooks(), cfg) as srv:
        assert request_response(srv.port, b"/page.html\n") == b"<html>cached</html>\n"
        assert request_response(srv.port, b"/page.html\n") == b"<html>cached</html>\n"
        assert srv.cache.stats.hits >= 1


def test_stop_is_idempotent():
    srv = ReactorServer(ServerHooks(), RuntimeConfig(async_completions=False))
    srv.start()
    srv.stop()
    srv.stop()


def test_port_before_start_raises():
    srv = ReactorServer(ServerHooks(), RuntimeConfig(async_completions=False))
    with pytest.raises(RuntimeError):
        srv.port
