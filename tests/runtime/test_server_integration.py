"""Integration tests: ReactorServer over real sockets on localhost.

Synchronization discipline: no ``time.sleep()`` — cross-thread state
(profiler counters, tracer records, pending accepts) is awaited with
``harness.wait_until`` and all lifecycles run inside
``harness.ServerFixture``.
"""

import socket
import threading

import pytest

from harness import ServerFixture, wait_until
from repro.runtime import (
    CLOSE,
    PENDING,
    ReactorServer,
    RuntimeConfig,
    ServerHooks,
)


@pytest.fixture(autouse=True)
def _every_backend(poller_backend):
    """Run the whole integration suite once per readiness backend
    (select is the oracle; epoll is the O18 fast path)."""


def fixture(hooks, cfg) -> ServerFixture:
    return ServerFixture(ReactorServer(hooks, cfg))


class UpperHooks(ServerHooks):
    """Newline-framed uppercase server exercising decode/handle/encode."""

    def decode(self, raw, conn):
        return raw.strip().decode()

    def handle(self, request, conn):
        return request.upper()

    def encode(self, result, conn):
        return result.encode() + b"\n"


def test_echo_roundtrip():
    with fixture(ServerHooks(), RuntimeConfig(use_codec=False,
                                              async_completions=False)) as srv:
        assert srv.request(b"hello\n") == b"hello\n"


def test_codec_pipeline():
    with fixture(UpperHooks(), RuntimeConfig(async_completions=False)) as srv:
        assert srv.request(b"hello\n") == b"HELLO\n"


def test_multiple_requests_one_connection():
    with fixture(UpperHooks(), RuntimeConfig(async_completions=False)) as srv:
        s = srv.connect(timeout=3)
        try:
            for word in (b"one", b"two", b"three"):
                s.sendall(word + b"\n")
                assert srv.read_line(s) == word.upper() + b"\n"
        finally:
            s.close()


def test_concurrent_clients():
    with fixture(UpperHooks(), RuntimeConfig(
            async_completions=False, processor_threads=4)) as srv:
        results = {}

        def client(i):
            results[i] = srv.request(f"client{i}\n".encode())

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert all(results[i] == f"CLIENT{i}".upper().encode() + b"\n"
                   for i in range(8))


def test_close_sentinel_drops_connection():
    class QuitHooks(ServerHooks):
        def handle(self, request, conn):
            return CLOSE if request.strip() == b"quit" else request

    with fixture(QuitHooks(), RuntimeConfig(
            use_codec=False, async_completions=False)) as srv:
        s = srv.connect(timeout=3)
        s.sendall(b"quit\n")
        assert s.recv(4096) == b""  # orderly close, no reply
        s.close()


def test_pending_async_reply():
    class AsyncHooks(ServerHooks):
        def handle(self, request, conn):
            threading.Timer(0.05, conn.complete_request,
                            args=(request.strip().upper() + b"\n",)).start()
            return PENDING

    with fixture(AsyncHooks(), RuntimeConfig(
            use_codec=False, async_completions=False)) as srv:
        assert srv.request(b"later\n") == b"LATER\n"


def test_hook_exception_closes_connection_not_server():
    class Flaky(ServerHooks):
        def handle(self, request, conn):
            if request.strip() == b"die":
                raise RuntimeError("handler bug")
            return request

    with fixture(Flaky(), RuntimeConfig(
            use_codec=False, async_completions=False, profiling=True)) as srv:
        # First connection crashes its handler...
        s = srv.connect(timeout=3)
        s.sendall(b"die\n")
        assert s.recv(4096) == b""
        s.close()
        # ... but the server still serves new clients.
        assert srv.request(b"alive\n") == b"alive\n"
        assert srv.server.profiler.snapshot().errors == 1


def test_inline_reactor_without_processor_pool():
    cfg = RuntimeConfig(use_processor_pool=False, use_codec=False,
                        async_completions=False)
    with fixture(ServerHooks(), cfg) as srv:
        assert srv.server.processor is None
        assert srv.request(b"inline\n") == b"inline\n"


def test_two_dispatcher_threads():
    cfg = RuntimeConfig(dispatcher_threads=2, use_codec=False,
                        async_completions=False)
    with fixture(ServerHooks(), cfg) as srv:
        assert srv.request(b"dual\n") == b"dual\n"


def test_large_reply_flushes_through_writable_events():
    class BigHooks(ServerHooks):
        def handle(self, request, conn):
            return b"X" * 1_000_000 + b"\n"

    with fixture(BigHooks(), RuntimeConfig(
            use_codec=False, async_completions=False)) as srv:
        s = srv.connect(timeout=5)
        s.sendall(b"go\n")
        total = 0
        while total < 1_000_001:
            chunk = s.recv(65536)
            if not chunk:
                break
            total += len(chunk)
        s.close()
        assert total == 1_000_001


def test_max_connections_cap():
    cfg = RuntimeConfig(use_codec=False, async_completions=False,
                        max_connections=1, profiling=True)
    with fixture(ServerHooks(), cfg) as srv:
        profiler = srv.server.profiler
        s1 = srv.connect(timeout=3)
        s1.sendall(b"first\n")
        assert srv.read_line(s1) == b"first\n"
        # Second connection connects at TCP level (kernel backlog) but
        # the server never accepts it while the first is open.
        s2 = srv.connect(timeout=3)
        s2.settimeout(0.3)
        s2.sendall(b"second\n")
        with pytest.raises(socket.timeout):
            s2.recv(4096)
        s1.close()
        # Once the server notices the close, the pending connection is
        # accepted — no fixed grace period, just the observable event.
        wait_until(lambda: profiler.snapshot().connections_accepted >= 2,
                   message="second connection never accepted")
        s2.settimeout(3)
        assert srv.read_line(s2) == b"second\n"
        s2.close()


def test_idle_reaper_closes_idle_connections():
    cfg = RuntimeConfig(use_codec=False, async_completions=False,
                        shutdown_long_idle=True, idle_limit=0.2)
    with fixture(ServerHooks(), cfg) as srv:
        s = srv.connect(timeout=3)
        assert s.recv(4096) == b""  # server reaps us (recv is the wait)
        s.close()
        assert srv.server.reaper.reaped == 1


def test_profiling_counts_bytes():
    with fixture(ServerHooks(), RuntimeConfig(
            use_codec=False, async_completions=False, profiling=True)) as srv:
        snapshot = srv.server.profiler.snapshot
        srv.request(b"12345\n")
        # The sender thread bumps bytes_sent after the flush our read
        # observed; wait for the counter, not a wall-clock guess.
        wait_until(lambda: snapshot().bytes_sent >= 6,
                   message="profiler never saw the sent bytes")
        snap = snapshot()
        assert snap.bytes_read == 6
        assert snap.bytes_sent == 6
        assert snap.connections_accepted == 1


def test_debug_mode_traces_events():
    with fixture(ServerHooks(), RuntimeConfig(
            use_codec=False, async_completions=False, debug_mode=True)) as srv:
        tracer = srv.server.tracer
        srv.request(b"traced\n")

        def categories():
            return {r.category for r in tracer.records()}

        wait_until(lambda: {"read", "send"} <= categories(),
                   message=f"tracer saw only {categories()}")


def test_event_scheduling_config_builds_priority_queue():
    from repro.runtime import QuotaPriorityQueue

    cfg = RuntimeConfig(use_codec=False, async_completions=False,
                        event_scheduling=True, scheduling_quotas={1: 4, 0: 1})
    with fixture(ServerHooks(), cfg) as srv:
        assert isinstance(srv.server.processor.queue, QuotaPriorityQueue)
        assert srv.request(b"sched\n") == b"sched\n"


def test_file_cache_async_serving(tmp_path):
    (tmp_path / "page.html").write_bytes(b"<html>cached</html>")

    class FileHooks(ServerHooks):
        def handle(self, request, conn):
            server = conn.context["server"]
            path = request.strip().decode()
            server.file_io.read_file(
                path,
                act=__import__("repro.runtime", fromlist=["AsynchronousCompletionToken"]
                               ).AsynchronousCompletionToken(
                    on_complete=lambda ev: conn.complete_request(
                        (ev.payload if ev.ok else b"ERROR") + b"\n")),
            )
            return PENDING

    cfg = RuntimeConfig(use_codec=False, cache_policy="LRU",
                        document_root=str(tmp_path))
    with fixture(FileHooks(), cfg) as srv:
        assert srv.request(b"/page.html\n") == b"<html>cached</html>\n"
        assert srv.request(b"/page.html\n") == b"<html>cached</html>\n"
        assert srv.server.cache.stats.hits >= 1


def test_stop_is_idempotent():
    srv = ReactorServer(ServerHooks(), RuntimeConfig(async_completions=False))
    srv.start()
    srv.stop()
    srv.stop()


def test_port_before_start_raises():
    srv = ReactorServer(ServerHooks(), RuntimeConfig(async_completions=False))
    with pytest.raises(RuntimeError):
        srv.port
