"""The pooled ``recv_into`` read path (O18 plane satellites).

``SocketHandle.try_recv`` used to allocate a fresh ``bytes`` per call;
it now reads into one pooled buffer per live connection.  These tests
pin the reasons that is safe:

* the returned ``memoryview`` aliases the pooled buffer — no copy on
  the hot path — and ``recv_into_buffer`` copies out under the read
  lock, so reassembly survives adversarial peer chunking;
* the pool's hit/miss accounting surfaces as the O11 gauge
  ``server_read_pool_hit_rate``;
* a fault-closed fd still leaves the poller's registration set (the
  epoll bookkeeping regression).
"""

import socket

from hypothesis import given, settings, strategies as st

from harness import ServerFixture, wait_until
from repro.runtime import (
    BufferPool,
    ReactorServer,
    RuntimeConfig,
    ServerHooks,
    SocketHandle,
)
from repro.runtime.event_source import SocketEventSource


def _pair():
    a, b = socket.socketpair()
    a.setblocking(False)
    return a, b


# -- no-copy + aliasing -------------------------------------------------


def test_try_recv_returns_view_over_pooled_buffer():
    """The no-copy pin: what try_recv returns is a memoryview whose
    backing object IS the handle's pooled read buffer, not a fresh
    ``bytes``."""
    a, b = _pair()
    pool = BufferPool()
    try:
        handle = SocketHandle(a, name="t")
        handle.read_pool = pool
        b.sendall(b"payload")
        chunk = handle.try_recv()
        assert isinstance(chunk, memoryview)
        assert chunk.obj is handle._read_buf
        assert bytes(chunk) == b"payload"
        # the same backing buffer is reused by the next read
        first_buf = handle._read_buf
        b.sendall(b"again")
        chunk2 = handle.try_recv()
        assert chunk2.obj is first_buf
        assert bytes(chunk2) == b"again"
    finally:
        a.close()
        b.close()


def test_release_returns_buffer_to_pool_and_is_idempotent():
    a, b = _pair()
    pool = BufferPool()
    handle = SocketHandle(a, name="t")
    handle.read_pool = pool
    b.sendall(b"x")
    handle.try_recv()
    assert pool.stats.misses == 1  # first checkout: cold pool
    handle.release_read_buffer()
    handle.release_read_buffer()  # idempotent
    assert pool.stats.releases == 1
    handle.close()  # close after release: still no double-release
    assert pool.stats.releases == 1
    b.close()
    # the next connection's first read is now a pool hit
    c, d = _pair()
    try:
        handle2 = SocketHandle(c, name="t2")
        handle2.read_pool = pool
        d.sendall(b"y")
        handle2.try_recv()
        assert pool.stats.hits == 1
        handle2.close()
    finally:
        c.close()
        d.close()


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1, max_size=4096),
       st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                max_size=30))
def test_reassembly_survives_adversarial_chunking(payload, cut_sizes):
    """Aliasing/no-corruption property: the peer dribbles the payload
    in arbitrary short writes; reading through ``recv_into_buffer``
    (which reuses ONE buffer for every chunk) must still reassemble the
    exact byte sequence — copy-out has to happen before the next recv
    scribbles over the shared buffer."""
    a, b = _pair()
    pool = BufferPool()
    try:
        handle = SocketHandle(a, name="t")
        handle.read_pool = pool
        sink = bytearray()
        sent = 0
        cuts = iter(cut_sizes)
        while sent < len(payload):
            step = next(cuts, None) or len(payload)
            b.sendall(payload[sent:sent + step])
            sent += step
            # tiny max_bytes forces many partial reads over one buffer
            while True:
                n = handle.recv_into_buffer(sink, max_bytes=7)
                if not n:
                    break
        assert bytes(sink) == payload
    finally:
        handle.close()
        a.close()
        b.close()


# -- the O11 gauge ------------------------------------------------------


def test_read_pool_hit_rate_gauge():
    """The read pool's accounting is wired into the profiling sampler
    as ``server_read_pool_hit_rate`` and reports a sane ratio after
    real traffic."""
    with ServerFixture(ReactorServer(
            ServerHooks(), RuntimeConfig(use_codec=False,
                                         async_completions=False,
                                         profiling=True))) as srv:
        for _ in range(3):  # sequential connections: later ones hit
            assert srv.request(b"ping\n") == b"ping\n"
        server = srv.server
        stats = server.socket_source.read_pool.stats
        wait_until(lambda: stats.acquires >= 3)
        server.sampler.sample()
        value = server.registry.value("server_read_pool_hit_rate")
        assert value is not None
        assert 0.0 <= value <= 1.0
        assert value == stats.hit_rate


# -- fault-closed fd bookkeeping ---------------------------------------


def test_fault_closed_fd_is_unregistered_from_poller(poller_backend):
    """Regression pin: a handle whose socket was closed out from under
    it (``fileno()`` now -1 on a real socket, but the event source
    cached the fd) must still be deregistered from the poller's set —
    a leaked epoll entry would alias the next connection that reuses
    the fd number."""
    source = SocketEventSource(poller=poller_backend)
    a, b = _pair()
    try:
        handle = SocketHandle(a, name="t")
        source.register(handle)
        fd = handle.fileno()
        assert fd in source._handles
        a.close()  # the fault: kernel-level close behind our back
        source.deregister(handle)
        assert fd not in source._handles
        data = getattr(source._poller, "_data", None)
        if data is not None:  # epoll backend bookkeeping
            assert fd not in data
        # and the pooled read buffer went back to the pool
        assert handle._read_buf is None
    finally:
        source.close()
        b.close()
