"""Unit tests for the Communicator's pipeline and ticket machinery,
using a fake in-memory handle (no sockets)."""

import threading

from harness import FakeHandle, feed
from repro.runtime import CLOSE, Communicator, PENDING, ServerHooks


def test_sync_pipeline_echo():
    conn = Communicator(FakeHandle(), ServerHooks(), use_codec=False)
    feed(conn, b"hello\n")
    assert bytes(conn.handle.sent) == b"hello\n"
    assert conn.requests_completed == 1


def test_multiple_framed_requests_in_one_chunk():
    conn = Communicator(FakeHandle(), ServerHooks(), use_codec=False)
    feed(conn, b"a\nb\nc\n")
    assert bytes(conn.handle.sent) == b"a\nb\nc\n"
    assert conn.requests_completed == 3


def test_partial_frame_waits():
    conn = Communicator(FakeHandle(), ServerHooks(), use_codec=False)
    feed(conn, b"incompl")
    assert conn.requests_completed == 0
    feed(conn, b"ete\n")
    assert bytes(conn.handle.sent) == b"incomplete\n"


def test_close_sentinel():
    class H(ServerHooks):
        def handle(self, request, conn):
            return CLOSE

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    feed(conn, b"bye\n")
    assert conn.closed
    assert conn.handle.sent == bytearray()


def test_hook_exception_closes_connection():
    class H(ServerHooks):
        def handle(self, request, conn):
            raise RuntimeError("boom")

    closed = []
    conn = Communicator(FakeHandle(), H(), use_codec=False,
                        on_teardown=closed.append)
    feed(conn, b"x\n")
    assert conn.closed and closed == [conn]


def test_pending_then_complete():
    class H(ServerHooks):
        def handle(self, request, conn):
            conn.context["pending_req"] = request
            return PENDING

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    feed(conn, b"later\n")
    assert conn.handle.sent == bytearray()
    conn.complete_request(b"RESULT\n")
    assert bytes(conn.handle.sent) == b"RESULT\n"
    assert conn.requests_completed == 1


def test_completion_racing_ahead_of_pending_return():
    """Regression: a service thread may deliver complete_request BEFORE
    the handle hook has returned PENDING.  The reply must not be lost."""

    class H(ServerHooks):
        def handle(self, request, conn):
            # Deliver the completion from another thread while we are
            # still inside the hook.
            t = threading.Thread(target=conn.complete_request,
                                 args=(b"EARLY\n",))
            t.start()
            t.join()   # guaranteed: completion arrives before PENDING
            return PENDING

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    feed(conn, b"race\n")
    assert bytes(conn.handle.sent) == b"EARLY\n"
    assert conn.requests_completed == 1


def test_spurious_completion_ignored():
    conn = Communicator(FakeHandle(), ServerHooks(), use_codec=False)
    conn.complete_request(b"nobody asked\n")
    assert conn.handle.sent == bytearray()


def test_pending_fifo_order():
    class H(ServerHooks):
        def handle(self, request, conn):
            return PENDING

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    feed(conn, b"one\ntwo\n")
    conn.complete_request(b"1\n")
    conn.complete_request(b"2\n")
    assert bytes(conn.handle.sent) == b"1\n2\n"


def test_codec_steps_applied():
    class H(ServerHooks):
        def decode(self, raw, conn):
            return raw.strip().decode()

        def handle(self, request, conn):
            return request[::-1]

        def encode(self, result, conn):
            return result.encode() + b"\n"

    conn = Communicator(FakeHandle(), H(), use_codec=True)
    feed(conn, b"abc\n")
    assert bytes(conn.handle.sent) == b"cba\n"


def test_encode_exception_closes():
    class H(ServerHooks):
        def encode(self, result, conn):
            raise ValueError("bad encode")

    conn = Communicator(FakeHandle(), H(), use_codec=True)
    feed(conn, b"x\n")
    assert conn.closed


def test_close_idempotent_and_on_close_called_once():
    calls = []

    class H(ServerHooks):
        def on_close(self, conn):
            calls.append(1)

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    conn.close()
    conn.close()
    assert calls == [1]


def test_send_bytes_close_after_flush():
    conn = Communicator(FakeHandle(), ServerHooks(), use_codec=False)
    conn.send_bytes(b"goodbye", close_after=True)
    assert conn.closed
    assert bytes(conn.handle.sent) == b"goodbye"


def test_classify_priority_applied_at_connect():
    class H(ServerHooks):
        def classify_priority(self, conn):
            return 7

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    assert conn.priority == 7


def test_on_connect_hook_runs():
    seen = []

    class H(ServerHooks):
        def on_connect(self, conn):
            seen.append(conn)

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    assert seen == [conn]
