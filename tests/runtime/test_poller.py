"""Unit tests for the pluggable readiness backends (O18 plane).

Everything in the first section runs against *both* backends through
the shared interface; the second section pins epoll-only semantics the
event source depends on (edge re-arm via MOD, the register-vs-poll
publication order, fault-closed fd tolerance).
"""

import select
import socket

import pytest

from repro.runtime import (
    EpollPoller,
    SelectPoller,
    available_pollers,
    make_poller,
)
from repro.runtime.poller import READ, WRITE


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    a.setblocking(False)
    b.setblocking(False)
    yield a, b
    a.close()
    b.close()


@pytest.fixture
def poller(poller_backend):
    p = make_poller(poller_backend)
    yield p
    p.close()


# -- interface contract, both backends ----------------------------------


def test_read_readiness_carries_data_cookie(poller, pair):
    a, b = pair
    poller.register(a.fileno(), READ, "cookie")
    assert poller.poll(0.0) == []
    b.sendall(b"x")
    assert poller.poll(1.0) == [("cookie", READ)]


def test_write_readiness(poller, pair):
    a, _b = pair
    poller.register(a.fileno(), WRITE, "w")
    data, mask = poller.poll(1.0)[0]
    assert data == "w" and mask & WRITE


def test_modify_switches_interest(poller, pair):
    a, b = pair
    b.sendall(b"x")
    poller.register(a.fileno(), WRITE, "h")
    poller.modify(a.fileno(), READ, "h")
    ready = poller.poll(1.0)
    assert ready and all(mask & READ and not mask & WRITE
                         for _, mask in ready)


def test_zero_mask_parks_fd_silently(poller, pair):
    a, b = pair
    b.sendall(b"x")
    poller.register(a.fileno(), 0, "parked")
    assert poller.poll(0.05) == []
    # unpark: readiness that accrued while parked is reported
    poller.modify(a.fileno(), READ, "parked")
    assert ("parked", READ) in poller.poll(1.0)


def test_unregister_stops_events(poller, pair):
    a, b = pair
    poller.register(a.fileno(), READ, "gone")
    poller.unregister(a.fileno())
    b.sendall(b"x")
    assert poller.poll(0.05) == []


def test_unregister_unknown_fd_raises(poller):
    with pytest.raises(KeyError):
        poller.unregister(999999)


def test_register_already_ready_fd_delivers_event(poller, pair):
    """The lost-edge regression: an fd that is readable *at* register
    time must surface on the next poll — under ET the ADD-time edge is
    the only one the kernel will ever post for those bytes."""
    a, b = pair
    b.sendall(b"early")
    poller.register(a.fileno(), READ, "late-reg")
    assert ("late-reg", READ) in poller.poll(1.0)


# -- backend selection --------------------------------------------------


def test_available_pollers_select_first():
    names = available_pollers()
    assert names[0] == "select"
    assert set(names) <= {"select", "epoll"}


def test_make_poller_explicit_name_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_POLLER", "epoll")
    assert isinstance(make_poller("select"), SelectPoller)


def test_make_poller_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_POLLER", "select")
    assert isinstance(make_poller(), SelectPoller)


def test_make_poller_unknown_name():
    with pytest.raises(ValueError):
        make_poller("kqueue-ish")


def test_select_poller_is_not_secretly_epoll():
    # the oracle must stay the scan-shaped backend on every platform
    p = SelectPoller()
    try:
        assert p.edge_triggered is False
        assert not isinstance(getattr(p, "_selector"),
                              getattr(__import__("selectors"),
                                      "EpollSelector",
                                      ()) or tuple())
    finally:
        p.close()


# -- epoll-only semantics ----------------------------------------------

epoll_only = pytest.mark.skipif("epoll" not in available_pollers(),
                                reason="no select.epoll on this platform")


@epoll_only
def test_epoll_mod_rearms_pending_edge():
    """resume-after-pause: data arrived while interest was off; the
    MOD back to READ must re-post the edge even though no *new* bytes
    arrive afterwards."""
    a, b = socket.socketpair()
    p = EpollPoller()
    try:
        a.setblocking(False)
        p.register(a.fileno(), READ, "h")
        b.sendall(b"x")
        assert p.poll(1.0) == [("h", READ)]  # edge consumed
        assert p.poll(0.05) == []            # ET: not re-posted
        p.modify(a.fileno(), READ, "h")      # re-arm
        assert p.poll(1.0) == [("h", READ)]
    finally:
        p.close()
        a.close()
        b.close()


@epoll_only
def test_epoll_unregister_after_close_is_clean():
    """A fault-closed fd already left the kernel set; unregister must
    still drop the bookkeeping entry without raising, so the event
    source never leaks a dead registration."""
    a, b = socket.socketpair()
    p = EpollPoller()
    try:
        fd = a.fileno()
        p.register(fd, READ, "dead")
        a.close()
        p.unregister(fd)  # kernel beat us to it: no raise
        assert fd not in p._data
        with pytest.raises(KeyError):
            p.unregister(fd)  # and it is really gone
    finally:
        p.close()
        b.close()


@epoll_only
def test_epoll_hup_surfaces_as_read():
    a, b = socket.socketpair()
    p = EpollPoller()
    try:
        a.setblocking(False)
        p.register(a.fileno(), READ, "h")
        b.close()
        ready = p.poll(1.0)
        assert ready and ready[0][1] & READ
    finally:
        p.close()
        a.close()


@epoll_only
def test_epoll_register_publishes_data_before_ctl():
    """Regression pin for the lost-edge race: the fd→data entry must be
    visible the instant the kernel can deliver the ADD-time edge.  We
    can't lose the race deterministically from one thread, so pin the
    ordering instead: a register that fails at epoll_ctl must roll the
    entry back (proving it was inserted first), and a successful one
    must leave it in place."""
    p = EpollPoller()
    try:
        with pytest.raises(OSError):
            p.register(999999, READ, "never")  # EBADF at epoll_ctl
        assert 999999 not in p._data
    finally:
        p.close()
