"""Tests for the event model, profiler, tracer and log."""

import io

import pytest

from repro.runtime import (
    AsynchronousCompletionToken,
    CompletionEvent,
    Event,
    EventKind,
    EventTracer,
    FileReadEvent,
    NULL_LOG,
    NULL_PROFILER,
    NULL_TRACER,
    Profiler,
    ReadableEvent,
    ServerLog,
    TimerEvent,
    UserEvent,
)


# -- events -------------------------------------------------------------------


def test_event_kinds():
    assert ReadableEvent().kind == EventKind.READABLE
    assert TimerEvent().kind == EventKind.TIMER
    assert UserEvent().kind == EventKind.USER


def test_event_ids_unique_and_increasing():
    a, b = Event(), Event()
    assert b.event_id > a.event_id


def test_event_priority_default_zero():
    assert Event().priority == 0
    assert Event(priority=7).priority == 7


def test_completion_event_ok_and_error():
    act = AsynchronousCompletionToken()
    good = CompletionEvent(token=act, payload=b"data")
    bad = CompletionEvent(token=act, error=OSError("disk"))
    assert good.ok and not bad.ok


def test_completion_event_invokes_token_callback():
    got = []
    act = AsynchronousCompletionToken(context="ctx",
                                      on_complete=lambda ev: got.append(ev.payload))
    ev = FileReadEvent(token=act, payload=b"bytes")
    ev.complete()
    assert got == [b"bytes"]
    assert ev.token.context == "ctx"


def test_completion_event_without_callback_is_noop():
    CompletionEvent(token=AsynchronousCompletionToken()).complete()


# -- profiler -------------------------------------------------------------------


def test_profiler_counters():
    p = Profiler()
    p.connection_accepted()
    p.connection_accepted()
    p.connection_closed()
    p.bytes_read(100)
    p.bytes_sent(250)
    p.request_handled()
    p.error()
    p.event_dispatched(3)
    snap = p.snapshot()
    assert snap.connections_accepted == 2
    assert snap.open_connections == 1
    assert snap.bytes_read == 100
    assert snap.bytes_sent == 250
    assert snap.requests_handled == 1
    assert snap.errors == 1
    assert snap.events_dispatched == 3
    assert snap.uptime >= 0.0


def test_profiler_cache_hit_rate():
    from repro.cache import Cache, LRUPolicy

    c = Cache(100, LRUPolicy())
    c.put("a", 10)
    c.get("a")
    c.get("b")
    p = Profiler()
    p.attach_cache(c.stats)
    assert p.snapshot().cache_hit_rate == pytest.approx(0.5)


def test_null_profiler_is_inert():
    NULL_PROFILER.connection_accepted()
    NULL_PROFILER.bytes_read(1000)
    snap = NULL_PROFILER.snapshot()
    assert snap.connections_accepted == 0
    assert not NULL_PROFILER.enabled


def test_profiler_is_a_registry_facade():
    """The Profiler's counters live in its metrics registry, under the
    exposition names the status page and Prometheus renderer use."""
    p = Profiler()
    p.request_handled()
    p.bytes_sent(512)
    assert p.registry.value("server_requests_total") == 1
    assert p.registry.value("server_bytes_sent_total") == 512


def test_profiler_accepts_external_registry():
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    p = Profiler(registry=reg)
    p.connection_accepted()
    assert reg.value("server_connections_accepted_total") == 1


def test_null_profiler_registry_is_null():
    assert NULL_PROFILER.registry.collect() == []


# -- tracer ---------------------------------------------------------------------


def test_tracer_records():
    t = EventTracer(capacity=10)
    t.trace("read", "conn1 +10B")
    t.trace("send", "conn1 -20B")
    assert len(t.records()) == 2
    assert t.records("read")[0].detail == "conn1 +10B"


def test_tracer_ring_bounded():
    t = EventTracer(capacity=5)
    for i in range(20):
        t.trace("x", str(i))
    recs = t.records()
    assert len(recs) == 5
    assert recs[0].detail == "15"


def test_tracer_streams_to_sink():
    sink = io.StringIO()
    t = EventTracer(sink=sink)
    t.trace("close", "conn9")
    assert "[close] conn9" in sink.getvalue()


def test_tracer_dump():
    t = EventTracer()
    t.trace("a", "1")
    t.trace("b", "2")
    out = io.StringIO()
    assert t.dump(out) == 2
    assert out.getvalue().count("\n") == 2


def test_tracer_capacity_validation():
    with pytest.raises(ValueError):
        EventTracer(capacity=0)


def test_null_tracer_is_inert():
    NULL_TRACER.trace("x", "y")
    assert NULL_TRACER.records() == []
    assert not NULL_TRACER.enabled


class FlushCountingSink(io.StringIO):
    def __init__(self):
        super().__init__()
        self.flushes = 0

    def flush(self):
        self.flushes += 1
        super().flush()


def test_tracer_flush_flushes_sink():
    sink = FlushCountingSink()
    t = EventTracer(sink=sink)
    t.trace("x", "1")
    t.flush()
    assert sink.flushes >= 1


def test_tracer_close_flushes_and_detaches_sink():
    sink = FlushCountingSink()
    t = EventTracer(sink=sink)
    t.trace("x", "1")
    t.close()
    assert sink.flushes >= 1
    assert not sink.closed               # caller owns the sink
    streamed = sink.getvalue()
    t.trace("x", "2")                    # after close: ring only
    assert sink.getvalue() == streamed
    assert [r.detail for r in t.records()] == ["1", "2"]
    t.close()                            # idempotent
    t.flush()                            # no sink: no-op


def test_tracer_dump_flushes_destination():
    t = EventTracer()
    t.trace("a", "1")
    out = FlushCountingSink()
    t.dump(out)
    assert out.flushes >= 1


def test_null_tracer_flush_close_noop():
    NULL_TRACER.flush()
    NULL_TRACER.close()


# -- log --------------------------------------------------------------------------


def test_log_levels_filtered():
    log = ServerLog(level="warning")
    log.debug("hidden")
    log.info("hidden")
    log.warning("shown")
    log.error("shown too")
    assert len(log.lines) == 2


def test_log_to_sink():
    sink = io.StringIO()
    log = ServerLog(sink=sink, level="debug")
    log.info("hello")
    assert "INFO" in sink.getvalue() and "hello" in sink.getvalue()


def test_log_bad_level():
    with pytest.raises(ValueError):
        ServerLog(level="catastrophic")


def test_null_log_is_inert():
    NULL_LOG.error("nothing happens")
    assert NULL_LOG.lines == []
