"""Tests for the SpecWeb99-like workload generator and Zipf sampling."""

import numpy as np
import pytest

from repro.workload import (
    CLASS_MIX,
    DIRECTORY_BYTES,
    SpecWebFileSet,
    ZipfSampler,
)


# -- Zipf ---------------------------------------------------------------------


def test_zipf_rank_zero_most_popular():
    z = ZipfSampler(100, alpha=1.0, seed=1)
    counts = np.bincount(z.sample_many(20000), minlength=100)
    assert counts[0] == counts.max()
    assert counts[0] > 4 * counts[50]


def test_zipf_alpha_zero_is_uniform():
    z = ZipfSampler(10, alpha=0.0, seed=1)
    counts = np.bincount(z.sample_many(50000), minlength=10)
    assert counts.min() > 0.8 * counts.max()


def test_zipf_probabilities_sum_to_one():
    z = ZipfSampler(50, alpha=1.0)
    assert sum(z.probability(r) for r in range(50)) == pytest.approx(1.0)


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, alpha=-1)


def test_zipf_deterministic_with_seed():
    a = ZipfSampler(100, seed=42).sample_many(100)
    b = ZipfSampler(100, seed=42).sample_many(100)
    assert (a == b).all()


# -- SpecWeb file set --------------------------------------------------------------


def test_fileset_total_close_to_requested():
    fs = SpecWebFileSet(204.8)
    assert fs.total_bytes / 1048576 == pytest.approx(204.8, rel=0.05)


def test_directory_structure():
    fs = SpecWebFileSet(10)
    assert fs.file_count == fs.directories * 36
    assert DIRECTORY_BYTES == sum(s for _p, s in fs.files()) / fs.directories


def test_class_sizes():
    fs = SpecWebFileSet(10)
    assert fs.size_of(0, 1) == 100
    assert fs.size_of(0, 9) == 900
    assert fs.size_of(3, 9) == 900_000
    with pytest.raises(ValueError):
        fs.size_of(4, 1)
    with pytest.raises(ValueError):
        fs.size_of(0, 10)


def test_mean_access_size_matches_paper():
    fs = SpecWebFileSet(204.8, seed=3)
    mean = fs.mean_access_size(samples=30000)
    assert 13_000 < mean < 18_000  # the paper's ~16 KB average


def test_sample_paths_exist_in_inventory():
    fs = SpecWebFileSet(5)
    inventory = dict(fs.files())
    for _ in range(200):
        path, size = fs.sample()
        assert inventory[path] == size


def test_class_mix_respected():
    fs = SpecWebFileSet(50, seed=2)
    counts = {0: 0, 1: 0, 2: 0, 3: 0}
    n = 30000
    for _ in range(n):
        path, _size = fs.sample()
        counts[int(path.split("class")[1][0])] += 1
    for c, expected in enumerate(CLASS_MIX):
        assert counts[c] / n == pytest.approx(expected, abs=0.02)


def test_zipf_directories_skewed():
    fs = SpecWebFileSet(204.8, seed=4)
    dir_counts = {}
    for _ in range(20000):
        path, _ = fs.sample()
        d = path.split("/")[1]
        dir_counts[d] = dir_counts.get(d, 0) + 1
    top = max(dir_counts.values())
    assert top > 3 * (20000 / fs.directories)  # much hotter than uniform


def test_validation():
    with pytest.raises(ValueError):
        SpecWebFileSet(0)
