"""Clean twin of ``known_blocking.py``: zero findings required.

The file *does* contain a ``time.sleep`` — in a function no reactor
root reaches — so a pass over it also proves the lint reports
reachability, not mere presence.
"""

import time


class PromptHandler:
    """Reactor callbacks that never block."""

    def on_readable(self, handle):
        self.note(handle)

    def note(self, handle):
        self.last = handle


def offline_maintenance():
    """Blocking is fine here: nothing on the reactor loop calls this."""
    time.sleep(0.01)
