"""Seeded lockset violation: the race detector MUST flag this file.

Two threads write an annotated field with no lock held, so the Eraser
candidate lockset is empty by the second access.  Drive it with
``python -m repro.lint race tests/lint/fixtures/known_race.py`` or the
test suite; ``run()`` is the scenario entry point.
"""

import threading

from repro.lint.locks import access


class UnlockedCounter:
    """Shared state updated with no locking discipline at all."""

    def __init__(self):
        self.value = 0

    def bump(self):
        access(self, "value")
        self.value += 1


def run():
    counter = UnlockedCounter()
    counter.bump()  # main thread: virgin -> exclusive
    worker = threading.Thread(target=counter.bump, name="second-writer")
    worker.start()
    worker.join()   # second thread: shared-modified with an empty lockset
    return counter
