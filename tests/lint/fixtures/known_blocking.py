"""Seeded reactor blocking call: the lint MUST flag this file.

``on_readable`` is a reactor-loop root; it reaches ``time.sleep``
through a helper, so the finding must carry the two-hop call path.
"""

import time


class SleepyHandler:
    """A reactor callback that stalls the loop through a helper."""

    def on_readable(self, handle):
        self._refill(handle)

    def _refill(self, handle):
        time.sleep(0.25)  # the seeded violation
