"""Disciplined twin of ``known_race.py``: the detector must stay quiet.

The same two-thread increment, but every access happens under one
consistent :func:`~repro.lint.locks.make_lock` — the candidate lockset
never empties, so a run reports zero findings (the no-false-positive
half of the fixture pair).
"""

import threading

from repro.lint.locks import access, make_lock


class LockedCounter:
    """Shared state guarded by a single consistent lock."""

    def __init__(self):
        self._lock = make_lock("LockedCounter")
        self.value = 0

    def bump(self):
        with self._lock:
            access(self, "value")
            self.value += 1


def run():
    counter = LockedCounter()
    counter.bump()
    worker = threading.Thread(target=counter.bump, name="second-writer")
    worker.start()
    worker.join()
    counter.bump()
    return counter
