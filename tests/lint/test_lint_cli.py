"""Exit-code contract tests for ``python -m repro.lint``."""

from repro.lint.__main__ import main


def test_blocking_fixture_exits_nonzero(fixture_path, capsys):
    assert main(["blocking", fixture_path("known_blocking.py"),
                 "--no-baseline"]) == 1
    assert "time.sleep" in capsys.readouterr().out


def test_blocking_clean_fixture_exits_zero(fixture_path, capsys):
    assert main(["blocking", fixture_path("clean_blocking.py"),
                 "--no-baseline"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_blocking_shipped_tree_clean_under_baseline(capsys):
    assert main(["blocking"]) == 0


def test_blocking_shipped_tree_suppression_is_live_without_baseline(capsys):
    assert main(["blocking", "--no-baseline"]) == 1
    assert "acceptor.py" in capsys.readouterr().out


def test_verbose_lists_suppressions_with_reasons(capsys):
    assert main(["blocking", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "suppressed" in out
    assert "load shedding" in out


def test_race_scenario_fixture_exits_nonzero(fixture_path,
                                             no_ambient_detector, capsys):
    assert main(["race", fixture_path("known_race.py")]) == 1
    assert "race:UnlockedCounter.value" in capsys.readouterr().out


def test_race_clean_scenario_exits_zero(fixture_path,
                                        no_ambient_detector, capsys):
    assert main(["race", fixture_path("clean_race.py")]) == 0
    assert "no findings" in capsys.readouterr().out


def test_docstring_gate_exit_codes(tmp_path):
    good = tmp_path / "good.py"
    good.write_text('"""doc"""\n\ndef f():\n    """doc"""\n')
    assert main(["docstrings", str(good), "--fail-under", "100"]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text("def f():\n    pass\n")
    assert main(["docstrings", str(bad), "--fail-under", "100"]) == 1


def test_full_check_shipped_tree_exits_zero(capsys):
    # the CI gate end to end: blocking lint + 18-option audit sweep +
    # crosscut three-way check + docstring ratchet, all clean
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "generated-code audit" in out
    assert "docstring coverage" in out
