"""Generated-code auditor tests: option corners and seeded violations."""

from repro.co2p3s.nserver import NSERVER
from repro.co2p3s.nserver.options import ALL_FEATURES_ON
from repro.lint.auditor import (
    audit_config,
    audit_report,
    class_universe,
    crosscut_findings,
    suite_configs,
)


class _StubReport:
    """Quacks like a GenerationReport for :func:`audit_report`."""

    def __init__(self, files, classes=()):
        self.files = files
        self._classes = list(classes)

    def class_names(self):
        return list(self._classes)


#: the option-matrix corners the issue requires audited (>= 6)
CORNERS = (
    "cops-ftp",
    "cops-http",
    "cops-http-resilient",
    "cops-http-sharded",
    "cops-http-zerocopy",
    "cops-http-degradation",
    "all-features-on",
    "pool-toggle-base",
    "degradation-toggle-base",
    "deployment-toggle-base",
)


def test_option_matrix_corners_audit_clean():
    configs = dict(suite_configs())
    for label in CORNERS:
        assert audit_config(configs[label], label) == [], label


def test_suite_exercises_every_option_value():
    # all 18 options, each through its full legal value set
    base = NSERVER.configure(ALL_FEATURES_ON)
    seen = {spec.key: set() for spec in base.specs}
    for _label, options in suite_configs():
        resolved = NSERVER.configure(options)
        for spec in base.specs:
            seen[spec.key].add(resolved[spec.key])
    assert len(seen) == 18
    for spec in base.specs:
        assert seen[spec.key] == set(spec.values), spec.key


def test_seeded_dangling_reference_is_flagged():
    missing = sorted(class_universe())[0]
    report = _StubReport({"mod.py": f"x = {missing}\n"})
    idents = [f.ident for f in audit_report(report, "stub")]
    assert f"audit:dangling:mod.py:{missing}" in idents


def test_seeded_syntax_error_is_flagged():
    report = _StubReport({"mod.py": "def broken(:\n"})
    idents = [f.ident for f in audit_report(report, "stub")]
    assert idents == ["audit:compile:mod.py"]


def test_seeded_dead_branch_is_flagged_but_event_loop_is_not():
    report = _StubReport({"mod.py": (
        "def f():\n"
        "    while True:\n"   # event-loop idiom: exempt
        "        break\n"
        "    if True:\n"      # leaked option guard: flagged
        "        pass\n")})
    idents = [f.ident for f in audit_report(report, "stub")]
    assert idents == ["audit:dead-branch:mod.py:4"]


def test_runtime_option_consultation_is_flagged():
    report = _StubReport({
        "__init__.py": "GENERATED_OPTIONS = {}\n",  # the record: allowed
        "mod.py": "from pkg import GENERATED_OPTIONS\n",
    })
    idents = [f.ident for f in audit_report(report, "stub")]
    assert idents == ["audit:options-at-runtime:mod.py"]


def test_seeded_stage_misuse_is_flagged():
    report = _StubReport({"mod.py": (
        "def f(span):\n"
        "    span.stage('decode')\n")})
    idents = [f.ident for f in audit_report(report, "stub")]
    assert "audit:span-stage:mod.py:span.stage" in idents


def test_o11_no_build_with_tracing_residue_is_flagged():
    options = {"O11": False}
    report = _StubReport({"mod.py": "x = handle.trace_id\n"})
    idents = [f.ident for f in audit_report(report, "stub",
                                            options=options)]
    assert "audit:o11-purity:mod.py" in idents
    # The record of the generation options is exempt: it names every
    # option, including the observability ones it turned off.
    report = _StubReport({"__init__.py": "GENERATED_OPTIONS = "
                                         "{'O11': 'No'}\n"
                                         "exporter = None\n"})
    assert not any("o11-purity" in f.ident
                   for f in audit_report(report, "stub", options=options))


def test_o11_yes_build_is_not_purity_scanned():
    report = _StubReport({"mod.py": "x = handle.trace_id\n"})
    assert not any(
        "o11-purity" in f.ident
        for f in audit_report(report, "stub", options={"O11": True}))
    # No options at all (direct audit_report callers): no purity scan.
    assert not any("o11-purity" in f.ident
                   for f in audit_report(report, "stub"))


def test_o11_purity_ignores_in_flight_prose():
    # "in-flight" in drain docstrings must not read as recorder residue.
    options = {"O11": False}
    report = _StubReport({"mod.py": (
        '"""Drain waits for in-flight events to finish."""\n')})
    assert not any("o11-purity" in f.ident
                   for f in audit_report(report, "stub", options=options))


def test_o17_no_build_with_degradation_residue_is_flagged():
    options = {"O11": True, "O17": False}
    report = _StubReport({"mod.py": "x = self.shedding.shed_total\n"})
    idents = [f.ident for f in audit_report(report, "stub",
                                            options=options)]
    assert "audit:o17-purity:mod.py" in idents
    # The generation-options record is exempt, as with O11.
    report = _StubReport({"__init__.py": "GENERATED_OPTIONS = "
                                         "{'O17': False}\n"
                                         "x = rejection_response\n"})
    assert not any("o17-purity" in f.ident
                   for f in audit_report(report, "stub", options=options))


def test_o17_yes_build_is_not_purity_scanned():
    report = _StubReport({"mod.py": "x = self.shedding.brownout\n"})
    assert not any(
        "o17-purity" in f.ident
        for f in audit_report(report, "stub",
                              options={"O11": True, "O17": True}))
    # Stub options without an O17 key (older callers): no purity scan.
    assert not any(
        "o17-purity" in f.ident
        for f in audit_report(report, "stub", options={"O11": True}))


def test_o17_purity_ignores_resilience_prose():
    # "sheds the poisoned event" in quarantine prose is not residue.
    options = {"O11": True, "O17": False}
    report = _StubReport({"mod.py": (
        '"""Quarantine sheds the poisoned event after retries."""\n')})
    assert not any("o17-purity" in f.ident
                   for f in audit_report(report, "stub", options=options))


def test_o16_single_process_build_with_deployment_residue_is_flagged():
    options = {"O11": True, "O16": 1}
    report = _StubReport({"mod.py": "x = rt.cluster_status_fields()\n"})
    idents = [f.ident for f in audit_report(report, "stub",
                                            options=options)]
    assert "audit:o16-purity:mod.py" in idents
    # The generation-options record is exempt, as with O11/O17.
    report = _StubReport({"__init__.py": "GENERATED_OPTIONS = "
                                         "{'O16': 1}\n"
                                         "x = respawn_limit\n"})
    assert not any("o16-purity" in f.ident
                   for f in audit_report(report, "stub", options=options))


def test_o16_multiproc_build_is_not_purity_scanned():
    report = _StubReport({"mod.py": "x = rt.ProcessSupervisor\n"})
    assert not any(
        "o16-purity" in f.ident
        for f in audit_report(report, "stub",
                              options={"O11": True, "O16": 2}))
    # Stub options without an O16 key (older callers): no purity scan.
    assert not any(
        "o16-purity" in f.ident
        for f in audit_report(report, "stub", options={"O11": True}))


def test_crosscut_three_way_agreement():
    # AST-derived == declared fragment metadata == checked-in Table 2
    assert crosscut_findings() == []
