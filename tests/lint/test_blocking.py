"""Tests for the reactor blocking-call lint."""

from repro.lint.blocking import BlockingLint, lint_paths


def test_seeded_blocking_fixture_is_flagged(fixture_path):
    findings = lint_paths([fixture_path("known_blocking.py")])
    assert findings, "the seeded fixture must produce a finding"
    assert any("time.sleep" in f.ident for f in findings)


def test_call_path_reported_through_helpers(fixture_path):
    findings = lint_paths([fixture_path("known_blocking.py")])
    (finding,) = [f for f in findings if "time.sleep" in f.ident]
    assert "SleepyHandler.on_readable" in finding.detail
    assert "_refill" in finding.detail


def test_clean_fixture_has_no_findings(fixture_path):
    # the clean fixture contains a time.sleep that no root reaches, so
    # zero findings also proves reachability (not presence) is checked
    with open(fixture_path("clean_blocking.py")) as fh:
        assert "time.sleep" in fh.read()
    assert lint_paths([fixture_path("clean_blocking.py")]) == []


def test_builtin_open_flagged_only_as_bare_name(tmp_path):
    src = (
        "class H:\n"
        "    def on_readable(self, handle):\n"
        "        data = open('/tmp/x').read()\n"
        "        handle.open()\n")
    path = tmp_path / "mod.py"
    path.write_text(src)
    lint = BlockingLint()
    lint.scan_file(str(path), "mod.py")
    findings = lint.findings()
    # the builtin open() is a finding; the handle.open() method is not
    assert [f.ident for f in findings] == ["blocking:mod.py:H.on_readable:open"]


def test_qualname_root_requires_class_context(tmp_path):
    src = (
        "import time\n"
        "class Acceptor:\n"
        "    def handle(self):\n"
        "        time.sleep(1)\n"
        "class Other:\n"
        "    def handle(self):\n"
        "        time.sleep(1)\n")
    path = tmp_path / "mod.py"
    path.write_text(src)
    lint = BlockingLint()
    lint.scan_file(str(path), "mod.py")
    # only Acceptor.handle is a root; Other.handle is an ordinary method
    assert [f.ident for f in lint.findings()] == [
        "blocking:mod.py:Acceptor.handle:time.sleep"]


def test_shipped_tree_only_finding_is_the_acceptor_backoff():
    # the acceptance criterion: the runtime and server apps carry
    # exactly one (intentional, baselined) blocking call
    assert [f.ident for f in lint_paths()] == [
        "blocking:repro/runtime/acceptor.py:Acceptor.handle:time.sleep"]
