"""Fixtures for the correctness-plane tests.

The tier-1 suite may itself be running under the ambient race detector
(``REPRO_RACE_DETECTOR=1`` installs one around every test).  Tests that
install their *own* detector suspend the ambient one for the test body
— the module-global slot holds one detector at a time by design.
"""

import os

import pytest

from repro.lint.locks import RaceDetector, active_detector

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


@pytest.fixture
def fixture_path():
    """Resolve a file name inside ``tests/lint/fixtures/``."""
    def _path(name: str) -> str:
        return os.path.join(FIXTURES, name)
    return _path


@pytest.fixture
def no_ambient_detector():
    """Suspend any ambient detector for the duration of the test."""
    ambient = active_detector()
    if ambient is not None:
        ambient.uninstall()
    try:
        yield
    finally:
        if ambient is not None:
            ambient.install()


@pytest.fixture
def fresh_detector(no_ambient_detector):
    """A newly installed detector private to this test."""
    detector = RaceDetector()
    detector.install()
    try:
        yield detector
    finally:
        detector.uninstall()
