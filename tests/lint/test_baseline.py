"""Baseline parsing, matching and validation tests."""

import pytest

from repro.lint.baseline import (
    Baseline,
    Suppression,
    _parse_minimal_toml,
    find_baseline,
    load_baseline,
)
from repro.lint.findings import Finding, render_findings, split_suppressed


def test_load_and_match(tmp_path):
    path = tmp_path / "lint-baseline.toml"
    path.write_text(
        "# comment\n"
        "[[suppression]]\n"
        'id = "blocking:a.py:F.g:time.sleep"\n'
        'reason = "deliberate"\n'
        "\n"
        "[[suppression]]\n"
        'id = "race:Pool.*"\n'
        'reason = "gil atomic"\n')
    baseline = load_baseline(str(path))
    assert baseline.suppressed("blocking:a.py:F.g:time.sleep")
    assert baseline.suppressed("race:Pool.hits")  # fnmatch wildcard
    assert not baseline.suppressed("race:Other.hits")
    assert baseline.reason_for("race:Pool.hits") == "gil atomic"
    assert baseline.reason_for("race:Other.hits") is None


def test_missing_reason_rejected(tmp_path):
    path = tmp_path / "lint-baseline.toml"
    path.write_text('[[suppression]]\nid = "race:X.y"\n')
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_missing_id_rejected(tmp_path):
    path = tmp_path / "lint-baseline.toml"
    path.write_text('[[suppression]]\nreason = "why"\n')
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_minimal_parser_handles_the_documented_shape():
    text = ("# header comment\n"
            "[[suppression]]\n"
            'id = "a"\n'
            "reason = 'b'\n")
    assert _parse_minimal_toml(text) == [{"id": "a", "reason": "b"}]


def test_minimal_parser_rejects_garbage():
    with pytest.raises(ValueError):
        _parse_minimal_toml('id = "orphan"\n')
    with pytest.raises(ValueError):
        _parse_minimal_toml('[[suppression]]\nid = unquoted\n')
    with pytest.raises(ValueError):
        _parse_minimal_toml('[other]\n')


def test_find_baseline_locates_the_checked_in_file():
    baseline = find_baseline()
    assert baseline is not None
    assert baseline.path.endswith("lint-baseline.toml")
    assert baseline.suppressed(
        "blocking:repro/runtime/acceptor.py:Acceptor.handle:time.sleep")


def test_split_suppressed_partitions():
    f1 = Finding("race", "race:A.x", "loc", "msg")
    f2 = Finding("race", "race:B.y", "loc", "msg")
    baseline = Baseline([Suppression("race:A.*", "ok")])
    live, quiet = split_suppressed([f1, f2], baseline)
    assert live == [f2] and quiet == [f1]
    live, quiet = split_suppressed([f1, f2], None)
    assert live == [f1, f2] and quiet == []


def test_render_findings_reports_empty_sets():
    assert "no findings" in render_findings([], title="t")
    f = Finding("race", "race:A.x", "a.py:1", "msg", detail="evidence")
    rendered = render_findings([f])
    assert "race:A.x" in rendered
    assert "    evidence" in rendered
