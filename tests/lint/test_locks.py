"""Unit tests for the Eraser-style lockset race detector."""

import threading

import pytest

from repro.lint.baseline import Baseline, Suppression
from repro.lint.locks import (
    RaceDetector,
    access,
    active_detector,
    make_lock,
    shared,
)


def _on_thread(fn):
    """Run ``fn`` to completion on a separate thread."""
    t = threading.Thread(target=fn)
    t.start()
    t.join()


class Box:
    """A bare owner object for annotated accesses."""

    def __init__(self):
        self.field = 0


def test_tracked_lock_context_manager_and_state():
    lock = make_lock("demo")
    assert not lock.locked()
    with lock:
        assert lock.locked()
    assert not lock.locked()
    assert "demo" in repr(lock)


def test_held_set_maintained_without_detector(no_ambient_detector):
    # the per-thread lockset updates even with no detector installed,
    # so a detector installed mid-run sees true lock state
    from repro.lint.locks import _held_set
    lock = make_lock("early")
    lock.acquire()
    assert lock in _held_set()
    lock.release()
    assert lock not in _held_set()


def test_access_without_detector_is_noop(no_ambient_detector):
    assert active_detector() is None
    access(object(), "anything")  # must not raise, must not record


def test_detecting_scopes_installation(no_ambient_detector):
    detector = RaceDetector()
    with detector.detecting() as active:
        assert active is detector
        assert active_detector() is detector
    assert active_detector() is None


def test_second_install_rejected(fresh_detector):
    with pytest.raises(RuntimeError):
        RaceDetector().install()


def test_single_thread_never_reports(fresh_detector):
    box = Box()
    for _ in range(5):
        access(box, "field")
    assert fresh_detector.findings() == []


def test_unlocked_two_thread_write_is_reported(fresh_detector):
    box = Box()
    access(box, "field")
    _on_thread(lambda: access(box, "field"))
    findings = fresh_detector.findings()
    assert [f.ident for f in findings] == ["race:Box.field"]
    assert "no lock consistently protects" in findings[0].message


def test_report_carries_both_conflicting_accesses(fresh_detector):
    box = Box()
    access(box, "field")
    _on_thread(lambda: access(box, "field"))
    (candidate,) = fresh_detector.candidates
    assert candidate.previous is not None
    assert candidate.current.thread != candidate.previous.thread
    finding = candidate.finding()
    assert "conflicting access" in finding.detail
    assert "earlier access" in finding.detail


def test_consistent_locking_never_reports(fresh_detector):
    box = Box()
    lock = make_lock("box")

    def bump():
        with lock:
            access(box, "field")

    bump()
    _on_thread(bump)
    bump()
    assert fresh_detector.findings() == []


def test_read_only_sharing_never_reports(fresh_detector):
    box = Box()
    access(box, "field", write=False)
    _on_thread(lambda: access(box, "field", write=False))
    assert fresh_detector.findings() == []


def test_write_after_read_only_sharing_reports(fresh_detector):
    box = Box()
    access(box, "field", write=False)
    _on_thread(lambda: access(box, "field", write=False))
    _on_thread(lambda: access(box, "field"))
    assert [f.ident for f in fresh_detector.findings()] == ["race:Box.field"]


def test_inconsistent_locks_report(fresh_detector):
    # two locks, neither held at every access: the intersection empties
    box = Box()
    lock_a, lock_b = make_lock("a"), make_lock("b")

    def with_a():
        with lock_a:
            access(box, "field")

    def with_b():
        with lock_b:
            access(box, "field")

    with_a()             # exclusive
    _on_thread(with_b)   # lockset initialised to {b}
    with_a()             # {b} & {a} == {} -> report
    assert [f.ident for f in fresh_detector.findings()] == ["race:Box.field"]


def test_reported_once_per_field(fresh_detector):
    box = Box()
    access(box, "field")
    _on_thread(lambda: access(box, "field"))
    _on_thread(lambda: access(box, "field"))
    access(box, "field")
    assert len(fresh_detector.findings()) == 1


def test_shared_registration_labels_fields(fresh_detector):
    box = Box()
    shared(box, "field", label="MyBox")
    access(box, "field")
    _on_thread(lambda: access(box, "field"))
    assert [f.ident for f in fresh_detector.findings()] == ["race:MyBox.field"]
    assert "MyBox.field" in fresh_detector.tracked_fields()


def test_findings_respect_baseline(fresh_detector):
    box = Box()
    access(box, "field")
    _on_thread(lambda: access(box, "field"))
    baseline = Baseline([Suppression("race:Box.*", "sanctioned snapshot")])
    assert fresh_detector.findings(baseline=baseline) == []
    assert len(fresh_detector.findings()) == 1


def test_distinct_owners_do_not_alias(fresh_detector):
    # per-(owner, field) state: a race on one instance does not taint
    # another instance of the same class
    racy, clean = Box(), Box()
    lock = make_lock("clean")
    access(racy, "field")
    _on_thread(lambda: access(racy, "field"))

    def locked():
        with lock:
            access(clean, "field")

    locked()
    _on_thread(locked)
    assert len(fresh_detector.findings()) == 1
