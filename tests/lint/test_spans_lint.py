"""The span-usage lint: ``.stage(...)`` must be a ``with`` context
expression (the exit stamp is what records the stage)."""

import ast
import textwrap

from repro.lint.spans import span_findings, stage_misuses


def misuses(source):
    return stage_misuses(ast.parse(textwrap.dedent(source)))


def test_with_stage_is_clean():
    assert misuses("""
        with span.stage("decode"):
            decode()
        with span.stage("handle"), span.stage("handle.cache"):
            handle()
    """) == []


def test_bare_stage_call_is_flagged():
    hits = misuses("""
        span.stage("decode")
        decode()
    """)
    assert [(line, call) for line, call in hits] == [(2, "span.stage")]


def test_manual_enter_is_flagged():
    # The subtle variant: opens a stage nobody ever closes.
    hits = misuses('span.stage("decode").__enter__()\n')
    assert len(hits) == 1 and hits[0][1] == "span.stage"


def test_stage_begin_end_pair_is_the_sanctioned_escape_hatch():
    assert misuses("""
        span.stage_begin("handle")
        park_on_pending()
        span.stage_end()
    """) == []


def test_stage_inside_other_with_items_still_flagged():
    # Only the context expression itself is sanctioned; a stage call in
    # a with *body* records nothing.
    hits = misuses("""
        with lock:
            span.stage("decode")
    """)
    assert len(hits) == 1


def test_span_findings_over_files(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text('def f(span):\n    span.stage("x")\n')
    clean = tmp_path / "clean.py"
    clean.write_text('def f(span):\n    with span.stage("x"):\n        pass\n')
    findings = span_findings([str(tmp_path)])
    assert len(findings) == 1
    finding = findings[0]
    assert finding.kind == "spans"
    assert finding.ident.startswith("spans:")
    assert "dirty.py" in finding.location
    assert "outside a with statement" in finding.message


def test_shipped_tree_is_clean():
    assert span_findings() == []
