"""Docstring-coverage ratchet tests."""

from repro.lint.docstrings import coverage_findings, measure


SAMPLE = (
    '"""Module doc."""\n'
    "class A:\n"
    '    """Class doc."""\n'
    "    def __init__(self):\n"
    "        pass\n"          # exempt: the class docstring covers it
    "    def m(self):\n"
    "        pass\n"          # undocumented
    "def f():\n"
    '    """Function doc."""\n'
)


def test_measure_counts_and_exemptions(tmp_path):
    path = tmp_path / "x.py"
    path.write_text(SAMPLE)
    report = measure([str(path)])
    # module, A, A.m, f counted; A.__init__ exempt under a documented class
    assert report.total == 4
    assert report.documented == 3
    assert report.missing == ["x.py.A.m"]
    assert report.percent == 75.0


def test_undocumented_init_counts_when_class_is_undocumented(tmp_path):
    path = tmp_path / "y.py"
    path.write_text("class B:\n    def __init__(self):\n        pass\n")
    report = measure([str(path)])
    assert report.total == 3  # module, B, B.__init__
    assert report.documented == 0


def test_nested_defs_not_counted(tmp_path):
    path = tmp_path / "z.py"
    path.write_text(
        '"""doc"""\n'
        "def outer():\n"
        '    """doc"""\n'
        "    def inner():\n"
        "        pass\n")
    report = measure([str(path)])
    assert report.total == 2  # module + outer; inner is implementation
    assert report.documented == 2


def test_ratchet_finding_below_threshold(tmp_path):
    path = tmp_path / "x.py"
    path.write_text(SAMPLE)
    report, findings = coverage_findings([str(path)], fail_under=80.0)
    assert report.percent == 75.0
    assert [f.ident for f in findings] == ["docstrings:ratchet"]
    assert "A.m" in findings[0].detail
    _report, findings = coverage_findings([str(path)], fail_under=70.0)
    assert findings == []


def test_gated_trees_meet_the_shipped_ratchet():
    # the CI gate: src/repro/lint + src/repro/runtime at >= 60%
    from repro.lint.__main__ import DOCSTRING_RATCHET, _docstring_paths
    report = measure(_docstring_paths())
    assert report.percent >= DOCSTRING_RATCHET
