"""Backend-parity plane: select (oracle) vs epoll (O18 fast path).

The edge-triggered epoll backend, the batched accept drain and the
pooled read path must be *behaviourally invisible*: a generated server
built on either backend, fed the identical seeded session set, must
produce byte-identical response streams and the identical divergence
set under the conformance model.  The portable ``select`` backend is
the oracle — it is the paper-shaped O(n)-scan reactor the model was
validated against.

Only the ``Date`` header is canonicalised before the byte comparison:
it is the one wall-clock field on the wire and the two replays
necessarily run a moment apart.
"""

import re

import pytest

from repro.conform.checker import (
    DEFAULT_FILES,
    DEFAULT_PATHS,
    _build_corner_server,
    check_session,
    corner_matrix,
    replay_session,
)
from repro.conform.model import ModelVFS
from repro.conform.sessions import directed_sessions, generate_sessions
from repro.runtime import available_pollers

pytestmark = pytest.mark.skipif(
    "epoll" not in available_pollers(),
    reason="epoll poller unavailable on this platform")

_DATE = re.compile(rb"^Date: [^\r\n]*\r\n", re.MULTILINE)

#: smoke corners whose replies are deterministic under sequential
#: replay (the fault corner's byte stream depends on injection timing,
#: and the admission-stateful O17 corners on arrival spacing)
PARITY_CORNERS = ("base", "obs", "sharded", "zerocopy")


def _sessions():
    return directed_sessions(DEFAULT_PATHS) + generate_sessions(
        4177, DEFAULT_PATHS, 6)


def _canon(stream: bytes) -> bytes:
    return _DATE.sub(b"Date: -\r\n", stream)


def _replay(corner, backend, sessions, tmp_path, monkeypatch):
    """Replay ``sessions`` sequentially against a fresh server generated
    and run on ``backend``; return (streams, divergence idents)."""
    monkeypatch.setenv("REPRO_POLLER", backend)
    server, _plane = _build_corner_server(
        corner, str(tmp_path / backend), DEFAULT_FILES, poller=backend)
    server.start()
    try:
        streams = [replay_session("127.0.0.1", server.port, s)
                   for s in sessions]
    finally:
        server.stop()
    vfs = ModelVFS(DEFAULT_FILES)
    divergences = set()
    for session, stream in zip(sessions, streams):
        for d in check_session(session, stream, vfs, corner.model,
                               corner.freedoms, corner.name):
            divergences.add((d.session, d.kind))
    return streams, divergences


@pytest.mark.parametrize("name", PARITY_CORNERS)
def test_backends_byte_identical(name, tmp_path, monkeypatch):
    corner = {c.name: c for c in corner_matrix("smoke")}[name]
    sessions = _sessions()
    oracle, oracle_div = _replay(corner, "select", sessions, tmp_path,
                                 monkeypatch)
    fast, fast_div = _replay(corner, "epoll", sessions, tmp_path,
                             monkeypatch)
    for session, a, b in zip(sessions, oracle, fast):
        if b"/server-status" in session.payload:
            # the status body is live telemetry (uptime, counters) —
            # not byte-stable even across two runs on one backend; the
            # divergence-set comparison below still judges it
            continue
        assert _canon(a) == _canon(b), (
            f"corner {name}, session {session.name}: epoll stream "
            f"diverged from the select oracle")
    assert fast_div == oracle_div, (
        f"corner {name}: backends disagree on the divergence set")
