"""Property tests tying the executable model to the real HTTP stack.

Two directions keep the model honest:

* **agreement** — on arbitrary request streams (well-formed, mutated
  and garbage) the model's framing and status decisions match
  ``repro.http``'s, so a conformance divergence always means the
  *server* misbehaved, never that the model drifted;
* **self-consistency** — a response serialised exactly as the model
  predicts must satisfy the model's own equivalence rules, so the
  rules cannot be unsatisfiable.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import http
from repro.conform import model as conform_model
from repro.conform.model import (
    Freedoms,
    ModelOptions,
    ModelVFS,
    expected_exchanges,
    parse_one_response,
)
from repro.conform.sessions import request_bytes

VFS_FILES = {
    "/index.html": b"<html>index</html>",
    "/a.html": b"A" * 120,
    "/sub/index.html": b"<html>sub</html>",
}


@st.composite
def request_blob(draw) -> bytes:
    """One request's bytes: usually well-formed, sometimes hostile."""
    method = draw(st.sampled_from(["GET", "HEAD", "POST", "BREW"]))
    target = draw(st.sampled_from(
        ["/", "/index.html", "/a.html", "/missing", "no-slash",
         "/%2e%2e/etc", "/sub/"]))
    version = draw(st.sampled_from(["HTTP/1.1", "HTTP/1.0", "HTTP/2.0"]))
    host = draw(st.sampled_from(["conform", None]))
    close = draw(st.booleans())
    headers = []
    cl = draw(st.sampled_from(
        [None, "0", "3", "+3", "12abc", "007", ""]))
    body = b""
    if cl is not None:
        headers.append(("Content-Length", cl))
        if cl.isdigit():
            body = b"x" * int(cl)
    if draw(st.booleans()):
        headers.append(("X-Extra", "1"))
    if draw(st.sampled_from([False, False, True])):  # occasional dup CL
        headers.append(("Content-Length",
                        draw(st.sampled_from(["3", "4"]))))
    eol = b"\r\n"
    lines = [f"{method} {target} {version}".encode("latin-1")]
    if host is not None:
        lines.append(b"Host: " + host.encode())
    for name, value in headers:
        lines.append(f"{name}: {value}".encode("latin-1"))
    if close:
        lines.append(b"Connection: close")
    return eol.join(lines) + eol + eol + body


@st.composite
def stream_blob(draw) -> bytes:
    """A connection's worth of input: requests, raw noise, or both —
    possibly truncated mid-frame."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(st.binary(max_size=64))
    data = b"".join(draw(st.lists(request_blob(), min_size=1, max_size=3)))
    if kind == 2 and data:
        data = data[:draw(st.integers(0, len(data)))]
    return data


def _impl_split(data: bytes):
    """repro.http framing folded to the model's return convention."""
    try:
        split = http.split_request(data)
    except http.BadRequest as exc:
        return exc.status
    return split


@given(stream_blob())
@settings(max_examples=200)
def test_framing_agreement(data):
    """Model framing == implementation framing, byte for byte: same
    incompleteness, same error status, same split boundary."""
    assert conform_model._split_model(data) == _impl_split(data)


@given(stream_blob())
@settings(max_examples=200)
def test_whole_stream_framing_agreement(data):
    """Walking a whole stream frame by frame stays in agreement."""
    rest = data
    for _ in range(8):
        model = conform_model._split_model(rest)
        impl = _impl_split(rest)
        assert model == impl
        if not isinstance(model, tuple):
            break
        _, rest = model


def _impl_status(req: bytes):
    """Parse + validate one framed request; the error status, or None
    when the request is protocol-clean."""
    try:
        request = http.parse_request(req)
        request.validate()
    except http.BadRequest as exc:
        return exc.status
    return None


@given(request_blob())
@settings(max_examples=200)
def test_status_agreement(req):
    """Where the implementation rejects a framed request, the model
    expects exactly that status; where it validates, the model expects
    a handler-level outcome (200/404, or 501 for unimplemented
    verbs)."""
    split = conform_model._split_model(req)
    if not isinstance(split, tuple):
        return  # framing error or incomplete: covered above
    framed, _ = split
    vfs = ModelVFS(VFS_FILES)
    expectation = conform_model._evaluate(
        framed, vfs, ModelOptions(), Freedoms())
    status = _impl_status(framed)
    if status is not None:
        assert expectation.status == status
    else:
        assert expectation.status in (200, 404, 501)


def _canonical_response(expectation) -> bytes:
    """Serialise the response the model predicts, the way the server
    would."""
    body = expectation.body if expectation.body is not None else b"ok"
    head = [f"HTTP/1.1 {expectation.status} X".encode()]
    head.append(b"Content-Type: text/html")
    head.append(b"Content-Length: " + str(len(body)).encode())
    if expectation.closes:
        head.append(b"Connection: close")
    wire = b"\r\n".join(head) + b"\r\n\r\n"
    if not expectation.head_only:
        wire += body
    return wire


@given(stream_blob())
@settings(max_examples=200)
def test_model_responses_satisfy_own_rules(data):
    """A response stream synthesised exactly as predicted passes the
    model's own equivalence rules — the rules are satisfiable."""
    vfs = ModelVFS(VFS_FILES)
    expectations = expected_exchanges(data, vfs, ModelOptions(), Freedoms())
    for expectation in expectations:
        wire = _canonical_response(expectation)
        parsed = parse_one_response(wire, head_only=expectation.head_only)
        assert isinstance(parsed, tuple), parsed
        resp, rest = parsed
        assert rest == b""
        verdict = expectation.check(resp)
        assert verdict.outcome == "ok", (expectation.label, verdict.reason)


def test_brownout_cap_allows_truncation_but_not_other_lengths():
    freedoms = Freedoms(brownout_level=0.6, brownout_max_response=2048)
    cap = freedoms.response_cap()
    assert cap is not None and 1024 <= cap < 2048
    body = b"B" * 6000
    vfs = ModelVFS({"/big.bin": body})
    (expectation,) = expected_exchanges(
        request_bytes("GET", "/big.bin", close=True), vfs,
        ModelOptions(), freedoms)
    for length, ok in [(6000, True), (cap, True), (cap - 1, False)]:
        wire = (b"HTTP/1.1 200 OK\r\nContent-Type: x/y\r\n"
                b"Content-Length: " + str(length).encode() +
                b"\r\nConnection: close\r\n\r\n" + body[:length])
        resp, _ = parse_one_response(wire)
        assert (expectation.check(resp).outcome == "ok") is ok


@given(st.lists(st.sampled_from(["..", "sub", "index.html", "", "."]),
                max_size=6))
def test_vfs_traversal_never_resolves_outside_root(parts):
    """No `..` arrangement resolves to anything but a registered file."""
    vfs = ModelVFS(VFS_FILES)
    resolved = vfs.resolve("/" + "/".join(parts))
    assert resolved is None or resolved in VFS_FILES.values()


@pytest.mark.parametrize("value,error", [
    (b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\n", None),
    (b"GET / HTTP/1.1\r\nContent-Length: +5\r\n\r\n", "bad"),
    (b"GET / HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n", "bad"),
    (b"GET / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
     "conflict"),
    (b"GET / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n",
     None),
])
def test_content_length_strictness(value, error):
    _, got = conform_model._content_length_of(value)
    assert got == error
