"""Regression tests for the bugs the conformance sweep surfaced.

Every test here started life as a diverging session in
``python -m repro.conform``; the server-backed half replays the shrunk
reproducers against a freshly generated base-corner framework, and the
unit half pins the layer-level fix (parser strictness, HEAD error
bodies, fd caching, ticket-ordered completions, 404s that must not
trip the disk breaker).
"""

import socket

import pytest

from repro import http
from repro.conform.checker import (
    DEFAULT_FILES,
    _build_corner_server,
    check_session,
    corner_matrix,
    replay_session,
)
from repro.conform.model import ModelVFS, parse_one_response
from repro.conform.sessions import (
    Session,
    Step,
    directed_sessions,
    request_bytes,
)
from repro.runtime import (
    AsyncFileIO,
    Communicator,
    PENDING,
    ServerHooks,
    SocketEventSource,
    SocketHandle,
)
from repro.runtime.degradation import CircuitBreaker

from harness import FakeHandle, feed


# ---------------------------------------------------------------------------
# server-backed reproducers (one base-corner server for the module)


@pytest.fixture(scope="module")
def base_server(tmp_path_factory):
    corner = next(c for c in corner_matrix("smoke") if c.name == "base")
    workdir = str(tmp_path_factory.mktemp("conform_regress"))
    server, _plane = _build_corner_server(corner, workdir, DEFAULT_FILES)
    server.start()
    yield corner, server
    server.stop()


def _replay(server, payload: bytes) -> bytes:
    session = Session(name="regress", steps=[Step("send", payload)])
    return replay_session("127.0.0.1", server.port, session)


def test_directed_sessions_clean_on_base_corner(base_server):
    corner, server = base_server
    vfs = ModelVFS(DEFAULT_FILES)
    problems = []
    for session in directed_sessions(list(DEFAULT_FILES)):
        stream = replay_session("127.0.0.1", server.port, session)
        problems += check_session(session, stream, vfs, corner.model,
                                  corner.freedoms, corner.name)
    assert problems == [], [d.ident for d in problems]


def test_pipelined_responses_come_back_in_request_order(base_server):
    """The communicator regression: two pipelined GETs must produce
    exactly two responses, first the first request's body, in order."""
    _, server = base_server
    stream = _replay(server,
                     request_bytes("GET", "/a.html")
                     + request_bytes("GET", "/index.html", close=True))
    first, rest = parse_one_response(stream)
    second, tail = parse_one_response(rest)
    assert first.status == 200 and first.body == DEFAULT_FILES["/a.html"]
    assert second.status == 200 and second.body == DEFAULT_FILES["/index.html"]
    assert tail == b""


def test_four_deep_pipeline_stays_aligned(base_server):
    _, server = base_server
    targets = ["/a.html", "/data.txt", "/index.html", "/b.html"]
    payload = b"".join(
        request_bytes("GET", t, close=(t == targets[-1])) for t in targets)
    rest = _replay(server, payload)
    for target in targets:
        parsed = parse_one_response(rest)
        assert isinstance(parsed, tuple), (target, rest[:80])
        resp, rest = parsed
        assert resp.body == DEFAULT_FILES[target], target
    assert rest == b""


def test_http10_keepalive_response_echoes_keepalive(base_server):
    """An HTTP/1.0 response that intends to keep the connection open
    must say so; a bare 1.0 response means close."""
    _, server = base_server
    payload = request_bytes("GET", "/index.html", version="HTTP/1.0",
                            headers=[("Connection", "keep-alive")]) \
        + request_bytes("GET", "/a.html", version="HTTP/1.0")
    first, rest = parse_one_response(_replay(server, payload))
    assert (first.header("Connection") or "").lower() == "keep-alive"
    second, _ = parse_one_response(rest)
    assert second.body == DEFAULT_FILES["/a.html"]


def test_head_missing_file_404_has_no_body(base_server):
    _, server = base_server
    stream = _replay(server, request_bytes("HEAD", "/no-such-file.html",
                                           close=True))
    resp, rest = parse_one_response(stream, head_only=True)
    assert resp.status == 404
    assert (resp.header("Content-Length") or "").isdigit()
    assert rest == b""          # no stray body bytes after the head


def test_framing_413_survives_to_the_response(base_server):
    """An over-limit Content-Length is rejected at the framing layer;
    the status must reach the wire as 413, not decay to a generic 400."""
    _, server = base_server
    stream = _replay(server,
                     b"GET /index.html HTTP/1.1\r\nHost: c\r\n"
                     b"Content-Length: 99999999999\r\n\r\n")
    resp, _ = parse_one_response(stream)
    assert resp.status == 413


# ---------------------------------------------------------------------------
# parser strictness (RFC 7230 §3.3.2)


@pytest.mark.parametrize("value", ["12abc", "+5", "", "0x10", "5 5"])
def test_malformed_content_length_is_400(value):
    raw = (f"GET / HTTP/1.1\r\nHost: c\r\nContent-Length: {value}"
           "\r\n\r\n").encode()
    with pytest.raises(http.BadRequest) as err:
        http.split_request(raw)
    assert err.value.status == 400


def test_conflicting_content_lengths_are_400():
    raw = (b"GET / HTTP/1.1\r\nHost: c\r\nContent-Length: 5\r\n"
           b"Content-Length: 6\r\n\r\nhello!")
    with pytest.raises(http.BadRequest) as err:
        http.split_request(raw)
    assert err.value.status == 400


def test_agreeing_duplicate_content_lengths_are_accepted():
    raw = (b"POST / HTTP/1.1\r\nHost: c\r\nContent-Length: 5\r\n"
           b"Content-Length: 5\r\n\r\nhello")
    req, rest = http.split_request(raw)
    assert rest == b""
    assert http.parse_request(req).body == b"hello"


def test_parse_request_revalidates_content_length():
    # A framing layer that swallowed the 400 must not let the request
    # through parse_request either.
    raw = b"GET / HTTP/1.1\r\nHost: c\r\nContent-Length: nope\r\n\r\n"
    with pytest.raises(http.BadRequest) as err:
        http.parse_request(raw)
    assert err.value.status == 400


def test_error_response_head_only_suppresses_body():
    full = http.error_response(404).encode()
    head = http.error_response(404, head_only=True).encode()
    assert full.endswith(b"\r\n\r\n") is False     # body present
    assert head.endswith(b"\r\n\r\n")              # body suppressed
    # both declare the same (nonzero) length
    full_head = full.split(b"\r\n\r\n", 1)[0]
    assert full_head.split(b"\r\n", 1)[0] == head.split(b"\r\n", 1)[0]
    assert b"Content-Length: 0" not in head


# ---------------------------------------------------------------------------
# ticket-ordered completions (the communicator fix, no sockets)


def test_out_of_order_completions_deliver_in_request_order():
    tickets = []

    class H(ServerHooks):
        def handle(self, request, conn):
            tickets.append(conn.current_ticket())
            return PENDING

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    feed(conn, b"one\ntwo\nthree\n")
    assert len(tickets) == 3 and None not in tickets
    t1, t2, t3 = tickets
    conn.complete_request(b"3\n", ticket=t3)
    conn.complete_request(b"2\n", ticket=t2)
    assert bytes(conn.handle.sent) == b""       # head still pending
    conn.complete_request(b"1\n", ticket=t1)
    assert bytes(conn.handle.sent) == b"1\n2\n3\n"
    assert conn.requests_completed == 3


def test_completing_a_ticket_twice_is_ignored():
    tickets = []

    class H(ServerHooks):
        def handle(self, request, conn):
            tickets.append(conn.current_ticket())
            return PENDING

    conn = Communicator(FakeHandle(), H(), use_codec=False)
    feed(conn, b"a\n")
    conn.complete_request(b"first\n", ticket=tickets[0])
    conn.complete_request(b"second\n", ticket=tickets[0])
    assert bytes(conn.handle.sent) == b"first\n"


def test_current_ticket_is_none_outside_a_handler():
    conn = Communicator(FakeHandle(), ServerHooks(), use_codec=False)
    assert conn.current_ticket() is None


# ---------------------------------------------------------------------------
# disk layer: 404s are not infrastructure failures


def wait_for(predicate, timeout=3.0):
    import time as _time
    deadline = _time.monotonic() + timeout
    while _time.monotonic() < deadline:
        if predicate():
            return True
        _time.sleep(0.005)
    return False


def test_missing_files_do_not_trip_the_breaker(tmp_path):
    breaker = CircuitBreaker(failure_threshold=2, recovery_time=60.0)
    got = []
    io_pool = AsyncFileIO(sink=got.append, threads=1, root=str(tmp_path),
                          breaker=breaker)
    io_pool.start()
    try:
        for _ in range(6):
            io_pool.read_file("/no-such-file.html")
        assert wait_for(lambda: len(got) == 6)
        assert all(not c.ok for c in got)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
    finally:
        io_pool.stop()


def test_sibling_directory_with_root_prefix_is_not_served(tmp_path):
    root = tmp_path / "root"
    root.mkdir()
    (root / "ok.txt").write_bytes(b"public")
    secret = tmp_path / "root-secret"
    secret.mkdir()
    (secret / "key.txt").write_bytes(b"private")
    got = []
    io_pool = AsyncFileIO(sink=got.append, threads=1, root=str(root))
    io_pool.start()
    try:
        io_pool.read_file("/../root-secret/key.txt")
        io_pool.read_file("/ok.txt")
        assert wait_for(lambda: len(got) == 2)
        by_ok = sorted(got, key=lambda c: c.ok)
        assert not by_ok[0].ok                    # traversal refused
        assert by_ok[1].payload == b"public"
    finally:
        io_pool.stop()


# ---------------------------------------------------------------------------
# handle/event-source teardown after fault closes


def test_socket_handle_fd_survives_close():
    a, b = socket.socketpair()
    handle = SocketHandle(a, name="t")
    fd = handle.fileno()
    assert fd > 0
    handle.close()
    b.close()
    assert handle.fileno() == fd


def test_stale_fd_registration_is_replaced_not_fatal():
    a, b = socket.socketpair()
    src = SocketEventSource()
    stale = SocketHandle(a, name="stale")
    fresh = SocketHandle(a, name="fresh")   # same fd: kernel fd reuse
    try:
        src.register(stale)
        src.register(fresh)         # must replace, not raise
        src.deregister(fresh)
    finally:
        src.close()
        a.close()
        b.close()
