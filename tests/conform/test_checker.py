"""Unit tests for the conformance session generator, differential
checker and shrinker — no live server needed."""

from repro.conform.checker import (
    DEFAULT_FILES,
    DEFAULT_PATHS,
    Divergence,
    check_session,
    corner_matrix,
    shrink_session,
)
from repro.conform.model import (
    Freedoms,
    ModelOptions,
    ModelVFS,
    expected_exchanges,
)
from repro.conform.sessions import (
    Session,
    Step,
    directed_sessions,
    generate_sessions,
    request_bytes,
)

VFS = ModelVFS(DEFAULT_FILES)


def _canonical_stream(session: Session) -> bytes:
    """Serialise exactly the responses the model expects for a session
    (the same synthesis the property suite proves self-consistent)."""
    wire = b""
    for exp in expected_exchanges(session.payload, VFS, ModelOptions(),
                                  Freedoms()):
        body = exp.body if exp.body is not None else b"ok"
        head = [f"HTTP/1.1 {exp.status} X".encode(),
                b"Content-Type: text/html",
                b"Content-Length: " + str(len(body)).encode()]
        if exp.closes:
            head.append(b"Connection: close")
        wire += b"\r\n".join(head) + b"\r\n\r\n"
        if not exp.head_only:
            wire += body
    return wire


def test_generate_sessions_is_deterministic():
    a = generate_sessions(2005, DEFAULT_PATHS, 16)
    b = generate_sessions(2005, DEFAULT_PATHS, 16)
    assert [s.name for s in a] == [s.name for s in b]
    assert [s.payload for s in a] == [s.payload for s in b]
    assert [[step.kind for step in s.steps] for s in a] == \
        [[step.kind for step in s.steps] for s in b]
    c = generate_sessions(2006, DEFAULT_PATHS, 16)
    assert [s.payload for s in a] != [s.payload for s in c]


def test_every_session_ends_closed_or_reset():
    for session in generate_sessions(7, DEFAULT_PATHS, 40) + \
            directed_sessions(DEFAULT_PATHS):
        if session.resets:
            continue
        expectations = expected_exchanges(
            session.payload, VFS, ModelOptions(), Freedoms())
        assert expectations, session.name
        assert expectations[-1].closes, session.name


def test_directed_sessions_cover_the_error_surface():
    names = {s.name for s in directed_sessions(DEFAULT_PATHS)}
    for required in ("d-ok", "d-pipeline", "d-badcl", "d-conflictcl",
                     "d-hugecl", "d-headmissing", "d-traversal",
                     "d-badversion", "d-nohost", "d-post"):
        assert required in names


def test_check_session_accepts_canonical_stream():
    session = Session(name="t", steps=[Step("send", request_bytes(
        "GET", "/index.html", close=True))])
    stream = _canonical_stream(session)
    assert check_session(session, stream, VFS, ModelOptions(),
                         Freedoms(), "unit") == []


def test_check_session_flags_wrong_status_with_stable_ident():
    session = Session(name="t", steps=[Step("send", request_bytes(
        "GET", "/index.html", close=True))])
    stream = _canonical_stream(session).replace(b" 200 ", b" 500 ", 1)
    (divergence,) = check_session(session, stream, VFS, ModelOptions(),
                                  Freedoms(), "unit")
    assert divergence.kind == "status"
    assert divergence.ident == "conform:unit:t:GET /index.html:status"


def test_check_session_flags_missing_response():
    session = Session(name="t", steps=[Step("send", request_bytes(
        "GET", "/index.html") + request_bytes("GET", "/a.html",
                                              close=True))])
    full = _canonical_stream(session)
    first_only = full[:full.index(b"HTTP/1.1", 1)]
    (divergence,) = check_session(session, first_only, VFS, ModelOptions(),
                                  Freedoms(), "unit")
    assert divergence.kind == "missing-response"


def test_reset_sessions_are_survival_only():
    session = Session(name="t", steps=[Step("send", b"GET /"),
                                       Step("reset")])
    assert check_session(session, b"anything", VFS, ModelOptions(),
                         Freedoms(), "unit") == []


def test_shed_freedom_tolerates_canned_503():
    session = Session(name="t", steps=[Step("send", request_bytes(
        "GET", "/index.html", close=True))])
    stream = (b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 7\r\n"
              b"Content-Type: text/plain\r\nContent-Length: 25\r\n"
              b"Connection: close\r\n\r\n503 Service Unavailable\r\n")
    assert check_session(session, stream, VFS, ModelOptions(),
                         Freedoms(shed=True), "unit") == []
    # ... but the same stream without the shed freedom is a divergence
    (divergence,) = check_session(session, stream, VFS, ModelOptions(),
                                  Freedoms(), "unit")
    assert divergence.kind == "status"


def test_shed_503_after_head_expectation_consumes_canned_body():
    session = Session(name="t", steps=[Step("send", request_bytes(
        "HEAD", "/index.html", close=True))])
    stream = (b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n"
              b"Content-Length: 25\r\nConnection: close\r\n\r\n"
              b"503 Service Unavailable\r\n")
    assert check_session(session, stream, VFS, ModelOptions(),
                         Freedoms(shed=True), "unit") == []


def test_shrink_finds_one_minimal_reproducer():
    """A seeded multi-request session shrinks to just the request that
    trips the (synthetic) failure predicate."""
    bad = request_bytes("GET", "/index.html",
                        headers=[("Content-Length", "12abc")])
    session = Session(name="fat", steps=[
        Step("send", request_bytes("GET", "/a.html")),
        Step("send", request_bytes("HEAD", "/index.html") + bad),
        Step("send", request_bytes("GET", "/b.html", close=True)),
    ])

    def failing(candidate: Session) -> bool:
        return b"12abc" in candidate.payload

    minimal = shrink_session(session, failing)
    assert failing(minimal)
    assert minimal.payload == bad
    assert len(minimal.steps) == 1


def test_shrink_keeps_interacting_pair():
    """When the failure needs two requests, both survive the shrink and
    everything else goes."""
    first = request_bytes("GET", "/a.html")
    second = request_bytes("GET", "/index.html", close=True)
    session = Session(name="pair", steps=[
        Step("send", request_bytes("HEAD", "/b.html") + first),
        Step("send", request_bytes("GET", "/data.txt")),
        Step("send", second),
    ])

    def failing(candidate: Session) -> bool:
        return (first in candidate.payload
                and second in candidate.payload)

    minimal = shrink_session(session, failing)
    assert failing(minimal)
    assert minimal.payload == first + second


def test_corner_matrix_covers_required_options():
    smoke = corner_matrix("smoke")
    names = {c.name for c in smoke}
    assert len(smoke) >= 8
    assert {"base", "shed", "brownout", "faulty", "degradation",
            "sharded", "procs"} <= names
    full = {c.name for c in corner_matrix("full")}
    assert names < full
    shed = next(c for c in smoke if c.name == "shed")
    assert shed.freedoms.shed and shed.sequential
    faulty = next(c for c in smoke if c.name == "faulty")
    assert faulty.fault_spec is not None and faulty.freedoms.faults


def test_divergence_ident_shape():
    divergence = Divergence.build("corner", "sess", "GET /", "status",
                                  "detail")
    assert divergence.ident == "conform:corner:sess:GET /:status"
