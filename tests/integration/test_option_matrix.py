"""Option-matrix integration: generate servers at diverse Table-1
option combinations and exercise each over real sockets.

The point of a generative template is that *every* legal combination
yields a correct server; this test samples structurally distinct
corners of the option space end-to-end.
"""

import socket

import pytest

from repro.co2p3s.nserver import NSERVER
from repro.co2p3s.template import load_generated_package
from repro.runtime import ServerHooks

BASE = {
    "O1": "1", "O2": True, "O3": True, "O4": "Synchronous",
    "O5": "Static", "O6": None, "O7": False, "O8": False, "O9": False,
    "O10": "Production", "O11": False, "O12": False,
}

#: structurally distinct corners of the option space
MATRIX = {
    "minimal_no_codec": dict(BASE, O3=False),
    "inline_reactor": dict(BASE, O2=False),
    "two_n_dispatchers": dict(BASE, O1="2N"),
    "dynamic_threads": dict(BASE, O5="Dynamic"),
    "async_completions": dict(BASE, O4="Asynchronous"),
    "scheduling": dict(BASE, O8=True),
    "overload": dict(BASE, O9=True),
    "debug_everything": dict(BASE, O10="Debug", O11=True, O12=True),
    "cache_hyper_g": dict(BASE, O4="Asynchronous", O6="Hyper-G"),
    "fault_tolerance": dict(BASE, O13=True),
    "fault_tolerance_inline": dict(BASE, O2=False, O13=True),
    # O14 corners: sharding alone (no obs, no resilience leakage to
    # lean on), sharding with hash affinity, and everything at once.
    "sharded_bare": dict(BASE, O14=2),
    "sharded_hash_policy": dict(BASE, O14=4),
    # O15 corners: the zero-copy write path bare, composed with the
    # async cache it is built for, and in the kitchen sink.
    "zerocopy_bare": dict(BASE, O15="zerocopy"),
    "zerocopy_cached": dict(BASE, O4="Asynchronous", O6="LRU",
                            O15="zerocopy"),
    "kitchen_sink": dict(BASE, O1="2N", O4="Asynchronous", O5="Dynamic",
                         O6="LFU", O7=True, O8=True, O9=True,
                         O10="Debug", O11=True, O12=True, O13=True,
                         O14=2, O15="zerocopy"),
}


class UpperHooks(ServerHooks):
    def decode(self, raw, conn):
        return raw.strip().decode()

    def handle(self, request, conn):
        return request.upper()

    def encode(self, result, conn):
        return result.encode() + b"\n"


class RawUpperHooks(ServerHooks):
    """For the no-codec variants: bytes in, bytes out."""

    def handle(self, request, conn):
        return request.strip().upper() + b"\n"


def roundtrip(port: int, n: int = 3) -> None:
    s = socket.create_connection(("127.0.0.1", port), timeout=5)
    s.settimeout(5)
    try:
        for i in range(n):
            payload = f"request number {i}\n".encode()
            s.sendall(payload)
            buf = b""
            while not buf.endswith(b"\n"):
                buf += s.recv(4096)
            assert buf == payload.upper()
    finally:
        s.close()


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_option_combination_serves_correctly(name, tmp_path):
    config = MATRIX[name]
    opts = NSERVER.configure(config)
    NSERVER.validate(opts)
    package = f"matrix_{name}_fw"
    NSERVER.generate(opts, str(tmp_path), package=package)
    fw = load_generated_package(str(tmp_path), package)

    hooks = UpperHooks() if config["O3"] else RawUpperHooks()
    kwargs = {}
    if config["O8"]:
        kwargs["scheduling_quotas"] = {0: 4, 1: 2}
    if name == "sharded_hash_policy":
        kwargs["shard_policy"] = "connection-hash"
    configuration = fw.ServerConfiguration(**kwargs)
    server = fw.Server(hooks, configuration=configuration)
    server.start()
    try:
        roundtrip(server.port)
        # Two concurrent connections for the threaded variants.
        import threading

        errors = []

        def client():
            try:
                roundtrip(server.port, n=2)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors, errors
    finally:
        server.stop()
    assert fw.GENERATED_OPTIONS == opts.as_dict()


def test_o16_multiproc_corner_serves_correctly(tmp_path):
    """O16=2: the generated Server forks two worker processes that
    accept on one shared SO_REUSEPORT socket.  Hooks must be importable
    (they cross the process boundary by module path), so this corner
    uses the time server's instead of the module-local ones."""
    from repro.servers.time_server import TimeServerHooks

    config = dict(BASE, O3=False, O16=2)
    opts = NSERVER.configure(config)
    NSERVER.validate(opts)
    NSERVER.generate(opts, str(tmp_path), package="matrix_procs_fw")
    fw = load_generated_package(str(tmp_path), "matrix_procs_fw")
    server = fw.Server(TimeServerHooks(),
                       configuration=fw.ServerConfiguration())
    server.start()
    try:
        for _ in range(4):  # REUSEPORT spreads these across workers
            s = socket.create_connection(("127.0.0.1", server.port),
                                         timeout=10)
            s.settimeout(10)
            try:
                s.sendall(b"what time is it\n")
                buf = b""
                while not buf.endswith(b"\n"):
                    buf += s.recv(4096)
                assert buf.decode("ascii")[4] == "-"  # YYYY-MM-DD ...
            finally:
                s.close()
    finally:
        server.stop()


def test_o16_default_emits_zero_deployment_code(tmp_path):
    """O16=1 builds carry no trace of the multi-process plane — not a
    file, not a word (the no-dead-code property again)."""
    opts = NSERVER.configure(BASE)
    report = NSERVER.generate(opts, str(tmp_path), package="matrix_one_fw")
    assert "deployment.py" not in report.files
    for name in report.files:
        if name == "__init__.py":
            continue  # GENERATED_OPTIONS records 'O16': 1
        text = (tmp_path / "matrix_one_fw" / name).read_text()
        for forbidden in ("Deployment", "supervisor", "respawn",
                          "rolling_restart", "worker_listen",
                          "cluster_status", "REUSEPORT", "multi-process"):
            assert forbidden not in text, \
                f"{forbidden!r} leaked into O16=1 {name}"


def test_o14_default_emits_zero_sharding_code(tmp_path):
    """O14=1 builds carry no trace of sharding — not a file, not a
    word (the generative pattern's no-dead-code property)."""
    opts = NSERVER.configure(BASE)
    report = NSERVER.generate(opts, str(tmp_path), package="matrix_flat_fw")
    assert "sharding.py" not in report.files
    for name in report.files:
        text = (tmp_path / "matrix_flat_fw" / name).read_text()
        assert "shard" not in text.lower(), f"sharding leaked into {name}"


def test_o15_default_emits_zero_buffer_code(tmp_path):
    """O15=buffered builds carry no trace of the zero-copy write path —
    not a file, not a call site (the no-dead-code property again)."""
    opts = NSERVER.configure(BASE)
    report = NSERVER.generate(opts, str(tmp_path), package="matrix_buf_fw")
    assert "buffers.py" not in report.files
    for name in report.files:
        if name == "__init__.py":
            continue  # GENERATED_OPTIONS records 'O15': 'buffered'
        text = (tmp_path / "matrix_buf_fw" / name).read_text()
        for forbidden in ("Buffers", "OutBuffer", "buffer_pool",
                          "out_buffer"):
            assert forbidden not in text, \
                f"{forbidden!r} leaked into O15=buffered {name}"


def test_sharded_without_obs_or_resilience_stays_clean(tmp_path):
    """O14>1 with O11=No and O13=No: the emitted sharding module must
    not reach for the observability or resilience layers it composes
    with when those options are on."""
    opts = NSERVER.configure(dict(BASE, O14=2))
    report = NSERVER.generate(opts, str(tmp_path), package="matrix_shard_fw")
    assert "sharding.py" in report.files
    sharding = (tmp_path / "matrix_shard_fw" / "sharding.py").read_text()
    for forbidden in ("obs", "observability", "resilience", "status_fields",
                      "drain", "safe_accept"):
        assert forbidden not in sharding, \
            f"{forbidden!r} leaked into O11=No/O13=No sharding code"
