"""O16 end-to-end over HTTP: the generated COPS-HTTP at procs=2.

The supervisor-level mechanics (respawn, zero-drop restart, budget)
live in ``tests/runtime/test_deployment.py``; here the *generated*
facade is the unit — ``Server`` delegating to ``Deployment``, the
``/server-status?auto`` page aggregating across worker processes, and
conversation-identical behaviour before and after a rolling restart.
"""

import re
import socket

import pytest

from repro.servers.cops_http import COPS_HTTP_OPTIONS, build_cops_http

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "send_fds"),
    reason="fd passing (socket.send_fds) unavailable")


def raw_exchange(port, payload, timeout=10.0):
    """Send raw bytes, read to EOF (Connection: close semantics)."""
    s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    s.settimeout(timeout)
    try:
        s.sendall(payload)
        buf = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                return buf
            buf += chunk
    finally:
        s.close()


def get(port, path, query=""):
    target = path + ("?" + query if query else "")
    return raw_exchange(port, (f"GET {target} HTTP/1.1\r\nHost: t\r\n"
                               "Connection: close\r\n\r\n").encode())


@pytest.fixture
def docroot(tmp_path):
    root = tmp_path / "docroot"
    root.mkdir()
    (root / "index.html").write_bytes(b"<h1>deployment</h1>")
    (root / "asset.txt").write_bytes(b"a" * 512)
    return root


def test_server_status_auto_aggregates_each_worker_exactly_once(
        docroot, tmp_path):
    server, _fw, _report = build_cops_http(
        str(docroot), options=dict(COPS_HTTP_OPTIONS, O11=True),
        dest=str(tmp_path / "build"), package="deploy_auto_fw", procs=2)
    server.start()
    try:
        for _ in range(6):
            assert get(server.port, "/").startswith(b"HTTP/1.1 200")
        body = get(server.port, "/server-status",
                   "auto").split(b"\r\n\r\n", 1)[1].decode()
    finally:
        server.stop()
    assert re.search(r"^Workers: 2$", body, re.M), body
    workers = re.findall(
        r'^server_requests_total\{worker="(\d+)"\}: (\d+)$', body, re.M)
    # two distinct worker sections, each contributing exactly once
    assert len(workers) == 2
    assert len({pid for pid, _count in workers}) == 2
    total = int(re.search(r"^server_requests_total: (\d+)$", body,
                          re.M).group(1))
    assert total == sum(int(count) for _pid, count in workers)
    # every per-worker metric line is unique — nothing double-counted
    lines = [line for line in body.splitlines() if '{worker="' in line]
    assert len(lines) == len(set(lines))


def test_rolling_restart_is_conversation_identical(docroot, tmp_path):
    """The byte-for-byte smoke: the same request set answers
    identically before and after every worker process is replaced."""
    conversations = [
        b"GET /index.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        b"HEAD /index.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        b"GET /missing.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        b"BOGUS / HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        b"not http at all\r\n\r\n",
    ]
    def normalise(response):
        # the Date header tracks the wall clock, not server behaviour
        return re.sub(rb"\r\nDate: [^\r]+", b"\r\nDate: -", response)

    server, _fw, _report = build_cops_http(
        str(docroot), dest=str(tmp_path / "build"),
        package="deploy_roll_fw", procs=2)
    server.start()
    try:
        before = [normalise(raw_exchange(server.port, c))
                  for c in conversations]
        old = set(server.deployment.supervisor.status()["workers"])
        server.rolling_restart()
        new = set(server.deployment.supervisor.status()["workers"])
        after = [normalise(raw_exchange(server.port, c))
                 for c in conversations]
    finally:
        server.stop()
    assert old.isdisjoint(new) and len(new) == 2
    assert before[0].startswith(b"HTTP/1.1 200")
    assert before == after
