"""Tests for the python -m repro.experiments entry point."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


def test_table_experiments_via_cli(capsys):
    assert main(["table1", "table3", "table4"]) == 0
    out = capsys.readouterr().out
    assert "TABLE 1" in out and "TABLE 3" in out and "TABLE 4" in out
    assert "[table1:" in out


def test_duplicate_names_run_once(capsys):
    assert main(["table1", "table1"]) == 0
    assert capsys.readouterr().out.count("TABLE 1") == 1


def test_quick_fig6(capsys):
    assert main(["fig6", "--quick"]) == 0
    assert "FIG 6" in capsys.readouterr().out


def test_quick_fig3_and_fig4_share_sweep(capsys):
    assert main(["fig3", "fig4", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "FIG 3" in out and "FIG 4" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_quick_fig3_shards(capsys):
    assert main(["fig3-shards", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "O14 extension" in out and "REACTOR SHARDS" in out


def test_quick_fig3_zerocopy(capsys):
    assert main(["fig3-zerocopy", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "O15 extension" in out and "ZERO-COPY" in out


def test_quick_fig3_poller(capsys):
    assert main(["fig3-poller", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "O18 extension" in out and "SELECT vs EPOLL" in out


def test_quick_fig3_procs(capsys):
    assert main(["fig3-procs", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "O16 extension" in out and "WORKER PROCESSES" in out


def test_all_is_every_experiment():
    assert set(EXPERIMENTS) == {"table1", "table2", "table3", "table4",
                                "fig3", "fig4", "fig5", "fig6",
                                "fig3-shards", "fig3-zerocopy",
                                "fig6-cliff", "fig3-poller",
                                "fig3-procs"}
