"""Smoke + shape tests for the experiment harnesses (small configs; the
full paper-scale sweeps are the benchmarks)."""

import pytest

from repro.experiments import (
    format_fig3,
    format_fig3_shards,
    format_fig3_zerocopy,
    format_fig4,
    format_fig5,
    format_fig6,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    run_capacity_sweep,
    run_fig5,
    run_shard_sweep,
    run_fig6,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_zerocopy_sweep,
)


def test_table1_rows_and_formatting():
    rows = run_table1()
    # The paper's 12 options plus the O13 fault-tolerance, O14
    # reactor-shards, O15 write-path, O16 deployment, O17 degradation
    # and O18 poller extensions.
    assert len(rows) == 18
    assert rows[12][0] == "O13: Fault tolerance"
    assert rows[12][2:] == ["No", "No"]     # both paper apps: off
    assert rows[13][0] == "O14: Reactor shards"
    assert rows[13][2:] == ["1", "1"]       # both paper apps: one reactor
    assert rows[14][0] == "O15: Write path"
    assert rows[14][2:] == ["buffered", "buffered"]  # the paper's path
    assert rows[15][0] == "O16: Deployment (worker processes)"
    assert rows[15][2:] == ["1", "1"]       # both paper apps: one process
    assert rows[16][0] == "O17: Degradation policy"
    assert rows[16][2:] == ["No", "No"]     # both paper apps: off
    assert rows[17][0] == "O18: Poller"
    assert rows[17][2:] == ["select", "select"]  # the paper's readiness model
    text = format_table1(rows)
    assert "COPS-FTP" in text and "Yes: LRU" in text


def test_table2_matches_paper_exactly():
    result = run_table2()
    assert result.matches_paper, result.vs_expected
    assert result.vs_declared == []
    assert "Exact match" in format_table2(result)


def test_table3_categories_and_ratio():
    result = run_table3()
    assert set(result.categories) == {"Reused code", "Removed code",
                                      "Added code", "Generated code"}
    for metrics in result.categories.values():
        assert metrics.ncss > 0
    # The paper's point: hand-written code is a small minority.
    assert result.handwritten_fraction() < 0.25
    # Reused dominates the hand-written side, as in the paper.
    assert (result.categories["Reused code"].ncss
            > result.categories["Added code"].ncss)
    assert "TABLE 3" in format_table3(result)


def test_table4_categories_and_ratio():
    result = run_table4()
    assert result.total.ncss > 0
    # "only ~20% of the total code would need to be programmed".  Our
    # application facade carries a CLI flag + builder kwarg per
    # extension option (shards, write path, procs, degradation,
    # poller) that the paper's COPS-HTTP never had, so the measured
    # fraction sits above the paper's 20% — but it must stay a clear
    # minority.
    assert result.application_fraction() < 1 / 3
    # Generated code is the largest single category, as in the paper.
    biggest = max(result.categories, key=lambda k: result.categories[k].ncss)
    assert biggest == "Generated code"
    assert "TABLE 4" in format_table4(result)


@pytest.fixture(scope="module")
def small_sweep():
    return run_capacity_sweep(client_counts=(4, 48), duration=10.0,
                              warmup=3.0)


def test_fig3_sweep_structure(small_sweep):
    assert set(small_sweep) == {"apache", "cops"}
    for pts in small_sweep.values():
        assert [p.clients for p in pts] == [4, 48]
        assert all(p.throughput > 0 for p in pts)
    text = format_fig3(small_sweep)
    assert "FIG 3" in text and "COPS-HTTP" in text and "Apache" in text


def test_fig4_formatting(small_sweep):
    text = format_fig4(small_sweep)
    assert "FIG 4" in text and "Jain" in text


def test_shard_sweep_structure():
    results = run_shard_sweep(shard_counts=(1, 2), clients=24,
                              duration=8.0, warmup=2.0)
    assert sorted(results) == [1, 2]
    assert results[1].server == "1-shard"
    assert all(p.throughput > 0 for p in results.values())
    text = format_fig3_shards(results)
    assert "REACTOR SHARDS" in text and "O14 extension" in text


def test_zerocopy_sweep_structure():
    """Small real-socket sweep: both write paths serve the same sample
    correctly (the throughput *gap* is the benchmark's job, not a shape
    assertion — a loaded CI host would make it flaky here)."""
    results = run_zerocopy_sweep(client_counts=(1, 2), requests=8)
    assert set(results) == {"buffered", "zerocopy"}
    for pts in results.values():
        assert [p.clients for p in pts] == [1, 2]
        assert all(p.throughput > 0 for p in pts)
        assert all(p.megabytes_per_sec > 0 for p in pts)
    text = format_fig3_zerocopy(results)
    assert "O15 extension" in text and "ZERO-COPY" in text
    assert "throughput ratio" in text


def test_fig5_ratios_track_quotas():
    points, portal_only = run_fig5(ratios=((1, 1), (1, 4)), clients=176,
                                   duration=15.0, warmup=4.0)
    flat, skewed = points
    assert flat.measured_ratio == pytest.approx(1.0, abs=0.25)
    assert skewed.measured_ratio > 2.5
    assert portal_only > flat.portal_throughput
    assert "FIG 5" in format_fig5(points, portal_only)


def test_fig6_control_lowers_response_time():
    points = run_fig6(client_counts=(8, 64), duration=12.0, warmup=3.0)
    by_key = {(p.clients, p.overload_control): p for p in points}
    heavy_no = by_key[(64, False)]
    heavy_ctl = by_key[(64, True)]
    assert heavy_ctl.response_mean < 0.75 * heavy_no.response_mean
    assert heavy_ctl.throughput > 0.85 * heavy_no.throughput
    light_no = by_key[(8, False)]
    light_ctl = by_key[(8, True)]
    # Under light load the control changes nothing.
    assert light_ctl.throughput == pytest.approx(light_no.throughput, rel=0.1)
    assert "FIG 6" in format_fig6(points)
