"""Tests for the python -m repro.co2p3s CLI."""

import pytest

from repro.co2p3s.__main__ import main


def test_list_shows_nserver(capsys):
    assert main(["list"]) == 0
    assert "n-server" in capsys.readouterr().out


def test_options_lists_all_twelve(capsys):
    assert main(["options", "n-server"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 13):
        assert f"O{i} " in out or f"O{i}:" in out or out.count(f"O{i}") >= 1


def test_generate_with_preset(tmp_path, capsys):
    assert main(["generate", "n-server", "--preset", "cops-http",
                 "--dest", str(tmp_path), "--package", "cli_test_fw"]) == 0
    assert (tmp_path / "cli_test_fw" / "server.py").exists()
    assert "generated" in capsys.readouterr().out


def test_generate_with_set_overrides(tmp_path):
    assert main(["generate", "n-server",
                 "--set", "O6=Hyper-G", "--set", "O10=Debug",
                 "--set", "O11=Yes",
                 "--dest", str(tmp_path), "--package", "cli_set_fw"]) == 0
    cache = (tmp_path / "cli_set_fw" / "cache.py").read_text()
    assert "Hyper-G" in cache


def test_generate_set_none_disables_cache(tmp_path):
    assert main(["generate", "n-server", "--set", "O6=None",
                 "--dest", str(tmp_path), "--package", "cli_none_fw"]) == 0
    assert not (tmp_path / "cli_none_fw" / "cache.py").exists()


def test_generate_bad_set_syntax(tmp_path):
    assert main(["generate", "n-server", "--set", "O6",
                 "--dest", str(tmp_path)]) == 2


def test_generate_illegal_option_value(tmp_path):
    from repro.co2p3s import OptionError

    with pytest.raises(OptionError):
        main(["generate", "n-server", "--set", "O6=MRU",
              "--dest", str(tmp_path)])


def test_crosscut_prints_matrix(capsys):
    assert main(["crosscut", "n-server"]) == 0
    out = capsys.readouterr().out
    assert "Reactor" in out and "O12" in out
