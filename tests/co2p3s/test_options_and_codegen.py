"""Tests for the generic CO2P3S machinery: options, fragments, codegen,
metrics."""

import pytest

from repro.co2p3s import (
    ClassSpec,
    CodeGenerator,
    Fragment,
    ModuleSpec,
    OMIT,
    OptionError,
    OptionSet,
    OptionSpec,
    measure_source,
)

SPECS = (
    OptionSpec(key="A", name="alpha", describe_values="Yes/No",
               default=True, values=(True, False)),
    OptionSpec(key="B", name="beta", describe_values="x/y/z",
               default="x", values=("x", "y", "z")),
    OptionSpec(key="C", name="gamma", describe_values="any positive int",
               default=1, validator=lambda v: isinstance(v, int) and v > 0),
)


# -- options -----------------------------------------------------------------


def test_defaults():
    opts = OptionSet(SPECS)
    assert opts["A"] is True and opts["B"] == "x" and opts["C"] == 1


def test_overrides_validated():
    opts = OptionSet(SPECS, {"B": "z"})
    assert opts["B"] == "z"
    with pytest.raises(OptionError):
        OptionSet(SPECS, {"B": "w"})


def test_validator_domain():
    opts = OptionSet(SPECS, {"C": 42})
    assert opts["C"] == 42
    with pytest.raises(OptionError):
        OptionSet(SPECS, {"C": 0})


def test_unknown_key_rejected():
    with pytest.raises(OptionError):
        OptionSet(SPECS, {"Z": 1})
    opts = OptionSet(SPECS)
    with pytest.raises(OptionError):
        opts.get("Z")


def test_replace_makes_validated_copy():
    opts = OptionSet(SPECS)
    new = opts.replace(B="y")
    assert new["B"] == "y" and opts["B"] == "x"
    with pytest.raises(OptionError):
        opts.replace(B="nope")


def test_equality_and_dict():
    a = OptionSet(SPECS, {"B": "y"})
    b = OptionSet(SPECS, {"B": "y"})
    assert a == b
    assert a.as_dict()["B"] == "y"


def test_duplicate_keys_rejected():
    with pytest.raises(OptionError):
        OptionSet(SPECS + (SPECS[0],))


# -- fragments ------------------------------------------------------------------


def ctx(**kw):
    base = {"greeting": "hello", "package": "pkg"}
    base.update(kw)
    return base


def test_fragment_renders_when_guard_true():
    frag = Fragment("x = '$greeting'", guard=lambda o: o["A"])
    opts = OptionSet(SPECS)
    assert frag.render(opts, ctx()) == "x = 'hello'"


def test_fragment_skipped_when_guard_false():
    frag = Fragment("x = 1", guard=lambda o: not o["A"])
    assert frag.render(OptionSet(SPECS), ctx()) is None


def test_fragment_missing_param_raises():
    frag = Fragment("x = $nope")
    with pytest.raises(KeyError):
        frag.render(OptionSet(SPECS), ctx())


def test_omit_deletes_whole_line():
    frag = Fragment("a = 1\n$maybe\nb = 2")
    out = frag.render(OptionSet(SPECS), ctx(maybe=OMIT))
    assert out == "a = 1\nb = 2"


def test_fragment_dedents():
    frag = Fragment('''
        def f(self):
            return 1
    ''')
    out = frag.render(OptionSet(SPECS), ctx())
    assert out.startswith("def f(self):")


# -- class/module rendering ---------------------------------------------------------


def make_generator():
    cls = ClassSpec(
        name="Widget",
        doc="A widget.",
        fragments=[
            Fragment("def __init__(self):\n    self.n = 0"),
            Fragment("def extra(self):\n    return '$greeting'",
                     guard=lambda o: o["A"], options=("A",)),
        ],
    )
    optional = ClassSpec(
        name="OnlyWhenY",
        doc="Exists only when B == 'y'.",
        exists=lambda o: o["B"] == "y",
        exists_options=("B",),
        fragments=[Fragment("pass")],
    )
    mod = ModuleSpec(name="widgets", doc="widgets module",
                     classes=[cls, optional])
    return CodeGenerator([mod], context_builder=lambda o: {"greeting": "hi"})


def test_generated_class_includes_guarded_fragment():
    gen = make_generator()
    report = gen.render(OptionSet(SPECS), package="p")
    assert "def extra" in report.files["widgets.py"]
    assert "return 'hi'" in report.files["widgets.py"]


def test_guarded_fragment_excluded():
    gen = make_generator()
    report = gen.render(OptionSet(SPECS, {"A": False}), package="p")
    assert "def extra" not in report.files["widgets.py"]


def test_existence_guard_drops_class():
    gen = make_generator()
    on = gen.render(OptionSet(SPECS, {"B": "y"}), package="p")
    off = gen.render(OptionSet(SPECS), package="p")
    assert "OnlyWhenY" in on.files["widgets.py"]
    assert "OnlyWhenY" not in off.files["widgets.py"]
    assert off.find_class("OnlyWhenY") is None
    assert on.find_class("OnlyWhenY") is not None


def test_generated_files_are_valid_python():
    import ast

    gen = make_generator()
    report = gen.render(OptionSet(SPECS), package="p")
    for text in report.files.values():
        ast.parse(text)


def test_generate_writes_package(tmp_path):
    gen = make_generator()
    report = gen.generate(OptionSet(SPECS), str(tmp_path), package="mypkg")
    assert (tmp_path / "mypkg" / "widgets.py").exists()
    assert (tmp_path / "mypkg" / "__init__.py").exists()
    assert report.dest.endswith("mypkg")


def test_body_options_union():
    cls = ClassSpec(name="X", doc="", fragments=[
        Fragment("a = 1", options=("A",)),
        Fragment("b = 2", options=("B", "A")),
    ])
    assert cls.body_options() == ("A", "B")


# -- metrics --------------------------------------------------------------------------


def test_measure_counts_classes_and_methods():
    src = '''
class A:
    """Doc."""

    def m1(self):
        pass

    def m2(self):
        return 1


def free():
    # a comment
    return 2
'''
    m = measure_source(src)
    assert m.classes == 1
    assert m.methods == 3  # two methods + one free function


def test_measure_ncss_excludes_comments_blanks_docstrings():
    src = (
        '"""Module docstring\nspanning lines."""\n'
        "\n"
        "# comment\n"
        "x = 1\n"
        "y = 2  # trailing comment still code\n"
    )
    m = measure_source(src)
    assert m.ncss == 2


def test_measure_paths(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "b.py").write_text("y = 1\nz = 2\n")
    (sub / "ignored.txt").write_text("not python\n")
    from repro.co2p3s import measure_paths

    m = measure_paths([str(tmp_path)])
    assert m.ncss == 3 and m.files == 2
