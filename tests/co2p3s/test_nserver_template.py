"""Tests for the N-Server template: option table, constraints, generated
code structure, and the Table 2 crosscut reproduction."""

import ast

import pytest

from repro.co2p3s import OptionError
from repro.co2p3s.crosscut import (
    CrosscutMatrix,
    declared_matrix,
    empirical_matrix,
    format_matrix,
)
from repro.co2p3s.nserver import (
    ALL_FEATURES_ON,
    COPS_FTP_OPTIONS,
    COPS_HTTP_OPTIONS,
    COPS_HTTP_DEGRADATION_OPTIONS,
    COPS_HTTP_OBSERVABILITY_OPTIONS,
    COPS_HTTP_OVERLOAD_OPTIONS,
    COPS_HTTP_RESILIENCE_OPTIONS,
    COPS_HTTP_SCHEDULING_OPTIONS,
    COPS_HTTP_SHARDED_OPTIONS,
    COPS_HTTP_ZEROCOPY_OPTIONS,
    DEGRADATION_TOGGLE_BASE,
    DEPLOYMENT_TOGGLE_BASE,
    EXPECTED_TABLE2,
    NSERVER,
    PAPER_TABLE2,
    POOL_TOGGLE_BASE,
    TABLE2_CLASS_ORDER,
    TABLE2_EXTENSIONS,
    option_table_rows,
)


# -- Table 1: the option model -------------------------------------------------


def test_eighteen_options():
    # The paper's twelve plus the O13 fault-tolerance, O14
    # reactor-shards, O15 write-path, O16 deployment, O17 degradation
    # and O18 poller extensions.
    specs = NSERVER.option_specs()
    assert [s.key for s in specs] == [f"O{i}" for i in range(1, 19)]


def test_paper_configurations_are_legal():
    for config in (COPS_FTP_OPTIONS, COPS_HTTP_OPTIONS,
                   COPS_HTTP_SCHEDULING_OPTIONS, COPS_HTTP_OVERLOAD_OPTIONS,
                   COPS_HTTP_RESILIENCE_OPTIONS, COPS_HTTP_SHARDED_OPTIONS,
                   COPS_HTTP_ZEROCOPY_OPTIONS, COPS_HTTP_DEGRADATION_OPTIONS,
                   ALL_FEATURES_ON, POOL_TOGGLE_BASE,
                   DEGRADATION_TOGGLE_BASE, DEPLOYMENT_TOGGLE_BASE):
        opts = NSERVER.configure(config)
        NSERVER.validate(opts)


def test_cops_ftp_column_matches_table1():
    opts = NSERVER.configure(COPS_FTP_OPTIONS)
    assert opts["O4"] == "Synchronous"
    assert opts["O5"] == "Dynamic"
    assert opts["O6"] is None
    assert opts["O7"] is True


def test_cops_http_column_matches_table1():
    opts = NSERVER.configure(COPS_HTTP_OPTIONS)
    assert opts["O4"] == "Asynchronous"
    assert opts["O5"] == "Static"
    assert opts["O6"] == "LRU"
    assert opts["O7"] is False


def test_option_table_rows_shape():
    rows = option_table_rows(COPS_FTP_OPTIONS, COPS_HTTP_OPTIONS)
    assert len(rows) == 18
    assert all(len(r) == 4 for r in rows)
    o6 = next(r for r in rows if r[0].startswith("O6"))
    assert o6[2] == "No" and o6[3] == "Yes: LRU"


def test_constraints():
    with pytest.raises(OptionError):
        NSERVER.validate(NSERVER.configure({"O8": True, "O2": False}))
    with pytest.raises(OptionError):
        NSERVER.validate(NSERVER.configure({"O9": True, "O2": False}))
    with pytest.raises(OptionError):
        NSERVER.validate(NSERVER.configure({"O5": "Dynamic", "O2": False}))
    with pytest.raises(OptionError):
        NSERVER.validate(NSERVER.configure({"O17": True, "O9": False}))


def test_illegal_option_value():
    with pytest.raises(OptionError):
        NSERVER.configure({"O6": "MRU"})


# -- generated code structure ---------------------------------------------------


def render(config):
    return NSERVER.render(NSERVER.configure(config), package="t")


def test_all_files_parse_for_paper_configs():
    for config in (COPS_FTP_OPTIONS, COPS_HTTP_OPTIONS,
                   COPS_HTTP_SCHEDULING_OPTIONS, COPS_HTTP_OVERLOAD_OPTIONS,
                   ALL_FEATURES_ON):
        report = render(config)
        for filename, text in report.files.items():
            ast.parse(text)


def test_full_config_generates_all_35_classes():
    report = render(ALL_FEATURES_ON)
    assert set(report.class_names()) == set(TABLE2_CLASS_ORDER)
    # paper's 27 + Observability (O11) + Resilience (O13) + Sharding (O14)
    # + Buffers (O15) + Degradation (O17) + Poller (O18)
    # + Deployment + Worker (O16)
    assert len(TABLE2_CLASS_ORDER) == 35


def test_optional_classes_absent_when_options_off():
    report = render(COPS_FTP_OPTIONS)  # Synchronous, no cache, static=no ctrl
    names = set(report.class_names())
    assert "CompletionEvent" not in names          # O4=Synchronous
    assert "FileOpenEvent" not in names
    assert "FileHandle" not in names
    assert "Cache" not in names                    # O6=No
    assert "ProcessorController" in names          # O5=Dynamic
    report2 = render(COPS_HTTP_OPTIONS)
    assert "ProcessorController" not in set(report2.class_names())  # Static


def test_codec_classes_follow_o3():
    with_codec = set(render(ALL_FEATURES_ON).class_names())
    without = set(render(dict(ALL_FEATURES_ON, O3=False)).class_names())
    assert "DecodeRequestEventHandler" in with_codec
    assert "DecodeRequestEventHandler" not in without
    assert "EncodeReplyEventHandler" not in without


def test_no_dynamic_feature_checks_in_generated_code():
    """The paper's core claim: option-disabled features leave NO trace in
    the generated code — no runtime flag checks."""
    report = render(COPS_HTTP_OPTIONS)  # profiling/logging/debug all off
    assert "observability.py" not in report.files
    for filename, text in report.files.items():
        assert "profiler" not in text, filename
        assert "tracer" not in text, filename
        assert ".log." not in text, filename
        assert "overload.accepting" not in text, filename
        assert "OverloadController" not in text, filename
        assert "reap_idle" not in text, filename
        assert "idle-scan" not in text, filename
        # O11=No: zero metric/span/status call sites anywhere.
        assert "observability" not in text.lower(), filename
        assert "spans" not in text, filename
        assert "obs-sample" not in text, filename
        assert "registry" not in text, filename
        assert "sampler" not in text, filename
        # O13=No: zero fault-tolerance code anywhere.
        assert "resilience" not in text.lower(), filename
        assert "deadline" not in text, filename
        assert "quarantine" not in text, filename
        assert "supervisor" not in text, filename
        assert "safe_accept" not in text, filename
        assert "def drain" not in text, filename
        assert "drain_timeout" not in text, filename
        # O14=1: zero sharding code anywhere.
        assert "shard" not in text.lower(), filename
        # O17=No: zero degradation-plane code anywhere.
        assert "degradation" not in text.lower(), filename
        assert "shedding" not in text, filename
        assert "shed_" not in text, filename
        assert "brownout" not in text, filename
        assert "breaker" not in text, filename
        assert "sojourn" not in text, filename
        assert "retry_after" not in text, filename
        assert "adaptive" not in text.lower(), filename
    assert "sharding.py" not in report.files
    assert "degradation.py" not in report.files


def test_observability_code_present_when_o11_on():
    report = render(COPS_HTTP_OBSERVABILITY_OPTIONS)
    assert "observability.py" in report.files
    obs_text = report.files["observability.py"]
    assert "MetricsRegistry" in obs_text
    assert "SpanRecorder" in obs_text
    assert "PeriodicSampler" in obs_text
    assert "status_report" in obs_text
    # Production build: span events are not mirrored into a tracer.
    assert "tracer=None" in obs_text
    # Cache probe present (O6=LRU), overload probe absent (O9=No).
    assert "server_cache_hit_rate" in obs_text
    assert "server_overload_tripped" not in obs_text
    reactor_text = report.files["reactor.py"]
    assert "self.observability = Observability(self)" in reactor_text
    assert "self.profiler = self.observability.profiler" in reactor_text
    assert "self.observability.wire()" in reactor_text
    comm_text = report.files["communication.py"]
    assert "spans=reactor.observability.spans" in comm_text
    assert "obs_sample_interval" in comm_text
    assert '"obs-sample"' in comm_text


def test_observability_debug_build_mirrors_spans_into_tracer():
    report = render(dict(COPS_HTTP_OBSERVABILITY_OPTIONS, O10="Debug"))
    assert "tracer=reactor.tracer" in report.files["observability.py"]


def test_resilience_code_present_when_o13_on():
    report = render(COPS_HTTP_RESILIENCE_OPTIONS)
    assert "resilience.py" in report.files
    res_text = report.files["resilience.py"]
    assert "DeadlineMonitor" in res_text
    assert "WorkerSupervisor" in res_text       # O2=Yes
    assert "EventQuarantine" in res_text
    assert "def safe_accept" in res_text
    # O11=Yes: resilience counters live on the shared obs registry and
    # therefore surface on /server-status automatically.
    assert "server_deadline_timeouts_total" in res_text
    assert "server_worker_restarts_total" in res_text
    assert "server_quarantined_events_total" in res_text
    reactor_text = report.files["reactor.py"]
    assert "self.resilience = Resilience(self)" in reactor_text
    assert "def drain(self" in reactor_text
    comm_text = report.files["communication.py"]
    assert "self.reactor.resilience.safe_accept(listen)" in comm_text
    assert "drain_timeout" in comm_text
    assert "def drain(self" in report.files["server.py"]


def test_resilience_without_pool_omits_supervision():
    """O13 with O2=No: deadlines and the hardened accept loop only —
    there is no Event Processor pool to supervise or quarantine for."""
    report = render(dict(COPS_HTTP_RESILIENCE_OPTIONS, O2=False))
    res_text = report.files["resilience.py"]
    assert "DeadlineMonitor" in res_text
    assert "WorkerSupervisor" not in res_text
    assert "EventQuarantine" not in res_text


def test_sharding_code_present_when_o14_gt1():
    report = render(COPS_HTTP_SHARDED_OPTIONS)
    assert "sharding.py" in report.files
    sh = report.files["sharding.py"]
    assert "class Sharding" in sh
    assert "for index in range(4)" in sh          # O14=4 baked in
    assert "rt.make_shard_policy" in sh
    assert "configuration.shard_policy" in sh
    # O13=Yes: hardened accept and the cross-shard drain barrier.
    assert "self.primary.resilience.safe_accept(listen)" in sh
    assert "def drain(self" in sh
    # O11=Yes: aggregated per-shard status fields.
    assert "obs.sharded_status_fields" in sh
    # O9=No: no overload gating woven into the accept loop.
    assert "overload" not in sh
    server = report.files["server.py"]
    assert "self.sharding = Sharding(configuration, hooks)" in server
    assert "self.reactor = self.sharding.primary" in server
    assert "return self.sharding.drain(timeout)" in server
    proc = report.files["processing.py"]
    assert "reactor.sharding.accept(event)" in proc
    comm = report.files["communication.py"]
    assert "def arm_timers(self)" in comm
    assert 'shard_policy = "round-robin"' in comm
    obs_text = report.files["observability.py"]
    assert "self.reactor.sharding.status_fields()" in obs_text


def test_sharding_composes_without_obs_and_resilience():
    """O14>1 with O11=No and O13=No: the sharded accept plane is
    generated with zero observability or fault-tolerance leakage."""
    report = render(dict(COPS_HTTP_OPTIONS, O14=2))
    sh = report.files["sharding.py"]
    assert "for index in range(2)" in sh
    assert "listen.try_accept()" in sh            # O13=No: bare accept
    assert "observability" not in sh.lower()
    assert "resilience" not in sh.lower()
    assert "def drain" not in sh
    assert "status_fields" not in sh
    assert "from repro import obs" not in sh
    assert "import time" not in sh


def test_shard_placement_weaves_follow_o9_o12():
    report = render(dict(ALL_FEATURES_ON, O14=4))
    sh = report.files["sharding.py"]
    # O9+O17: only shards still accepting are placement candidates, and
    # saturation answers clients instead of silently postponing.
    assert "if s.overload.accepting()" in sh
    assert "shard.overload.connection_opened()" in sh
    assert "shedding.record_rejection" in sh
    assert "shedding.admit_client" in sh
    # O12=Yes: accept and drain logging through the primary's log.
    assert "self.primary.log.info" in sh
    # O17=No keeps the base template's silent-postpone accept gate.
    plain = render(dict(ALL_FEATURES_ON, O14=4, O17=False)).files["sharding.py"]
    assert ("if not any(s.overload.accepting() for s in self.shards): "
            "return" in plain)
    assert "shedding" not in plain


def test_zerocopy_code_present_when_o15_on():
    report = render(COPS_HTTP_ZEROCOPY_OPTIONS)
    assert "buffers.py" in report.files
    buf = report.files["buffers.py"]
    assert "class Buffers" in buf
    assert "rt.BufferPool" in buf
    assert "configuration.buffer_size_classes" in buf
    assert "configuration.buffer_pool_limit" in buf
    assert "rt.OutBuffer()" in buf
    reactor_text = report.files["reactor.py"]
    assert "from t.buffers import Buffers" in reactor_text
    assert "self.buffers = Buffers(self)" in reactor_text
    comm = report.files["communication.py"]
    assert "buffer_pool=reactor.buffers.pool" in comm
    assert "handle.out_buffer = rt.OutBuffer()" in comm
    assert "buffer_size_classes = (1024, 4096, 16384, 65536)" in comm
    assert "buffer_pool_limit = 64" in comm


def test_zerocopy_probe_present_only_with_observability():
    plain = render(COPS_HTTP_ZEROCOPY_OPTIONS)
    assert "observability.py" not in plain.files
    with_obs = render(dict(COPS_HTTP_ZEROCOPY_OPTIONS, O11=True))
    obs_text = with_obs.files["observability.py"]
    assert "server_buffer_pool_hit_rate" in obs_text
    assert "reactor.buffers.pool.stats.hit_rate" in obs_text


def test_degradation_code_present_when_o17_on():
    report = render(COPS_HTTP_DEGRADATION_OPTIONS)
    assert "degradation.py" in report.files
    deg = report.files["degradation.py"]
    assert "class Degradation" in deg
    assert "rt.SheddingPolicy" in deg
    assert "rt.ClientRateLimiter" in deg
    assert "rt.BrownoutController" in deg
    assert "rt.CircuitBreaker" in deg
    assert "rt.RetryBudget" in deg
    assert "rt.AdaptiveController" in deg
    assert "rt.SojournQueue" in deg
    # O11=Yes: the adaptive controller reads the request p99 from the
    # shared registry; O12=No: the retune log argument is omitted.
    assert "server_request_seconds" in deg
    assert "log=reactor.log" not in deg
    reactor_text = report.files["reactor.py"]
    assert "self.degradation = Degradation(self)" in reactor_text
    assert "Degradation.wrap_queue(configuration," in reactor_text
    assert "breaker=self.degradation.breaker" in reactor_text
    assert "retry_budget=self.degradation.retry_budget" in reactor_text
    assert "self.degradation.start()" in reactor_text
    assert "self.degradation.stop()" in reactor_text
    comm = report.files["communication.py"]
    # The O17 accept loop replaces the O9 silent-postpone loop: explicit
    # decisions, cheap rejection, per-client rate limit.
    assert "shedding.admit_accept()" in comm
    assert "shedding.admit_client(" in comm
    assert "def _reject(self, handle)" in comm
    assert "self.reactor.overload.accepting()" not in comm
    assert "shed_rate = 100.0" in comm
    assert "sojourn_deadline = None" in comm
    assert "adaptive_control = False" in comm
    obs_text = report.files["observability.py"]
    assert "server_shed_total" in obs_text
    assert "server_brownout_level" in obs_text
    assert "server_breaker_open" in obs_text


def test_overload_build_without_o17_keeps_silent_postpone():
    """O9 alone is the paper's Fig 6 shape: the guarded accept loop
    postpones silently and no shedding vocabulary is generated."""
    report = render(COPS_HTTP_OVERLOAD_OPTIONS)
    comm = report.files["communication.py"]
    assert "if not self.reactor.overload.accepting():" in comm
    assert "shedding" not in comm
    assert "degradation.py" not in report.files


ALL_FEATURES_ON_BUFFERED = dict(ALL_FEATURES_ON, O15="buffered")


def test_buffered_write_path_emits_zero_buffer_code():
    """O15=buffered is the paper's copying write path: no buffers
    module and no buffer call site anywhere in the generated text."""
    report = render(ALL_FEATURES_ON_BUFFERED)
    assert "buffers.py" not in report.files
    for filename, text in report.files.items():
        if filename == "__init__.py":
            continue  # GENERATED_OPTIONS records 'O15': 'buffered'
        assert "Buffers" not in text, filename
        assert "OutBuffer" not in text, filename
        assert "buffer_pool" not in text, filename
        assert "buffer_size_classes" not in text, filename
        assert "out_buffer" not in text, filename


def test_table2_extension_rows_merge():
    assert "Observability" not in PAPER_TABLE2  # paper stays verbatim
    assert "Resilience" not in PAPER_TABLE2
    assert EXPECTED_TABLE2["Observability"]["O11"] == "O"
    assert EXPECTED_TABLE2["ServerComponent"]["O11"] == "+"
    assert EXPECTED_TABLE2["ServerConfiguration"]["O11"] == "+"
    assert EXPECTED_TABLE2["Resilience"]["O13"] == "O"
    assert EXPECTED_TABLE2["Reactor"]["O13"] == "+"
    assert EXPECTED_TABLE2["AcceptorEventHandler"]["O13"] == "+"
    assert EXPECTED_TABLE2["Server"]["O13"] == "+"
    assert EXPECTED_TABLE2["ServerConfiguration"]["O13"] == "+"
    assert EXPECTED_TABLE2["Sharding"]["O14"] == "O"
    assert EXPECTED_TABLE2["Reactor"]["O14"] == "+"
    assert EXPECTED_TABLE2["EventDispatcher"]["O14"] == "+"
    assert EXPECTED_TABLE2["Server"]["O14"] == "+"
    assert EXPECTED_TABLE2["Buffers"]["O15"] == "O"
    assert EXPECTED_TABLE2["Reactor"]["O15"] == "+"
    assert EXPECTED_TABLE2["CommunicatorComponent"]["O15"] == "+"
    assert EXPECTED_TABLE2["ServerComponent"]["O15"] == "+"
    assert EXPECTED_TABLE2["ServerConfiguration"]["O15"] == "+"
    assert EXPECTED_TABLE2["Observability"]["O15"] == "+"
    assert EXPECTED_TABLE2["Degradation"]["O17"] == "O"
    assert EXPECTED_TABLE2["Degradation"]["O11"] == "+"
    assert EXPECTED_TABLE2["Degradation"]["O12"] == "+"
    assert EXPECTED_TABLE2["Reactor"]["O17"] == "+"
    assert EXPECTED_TABLE2["AcceptorEventHandler"]["O17"] == "+"
    assert EXPECTED_TABLE2["ServerConfiguration"]["O17"] == "+"
    assert EXPECTED_TABLE2["Observability"]["O17"] == "+"
    assert EXPECTED_TABLE2["Sharding"]["O17"] == "+"
    # Extensions only add cells, never overwrite a paper cell.
    for name, row in TABLE2_EXTENSIONS.items():
        for key in row:
            assert PAPER_TABLE2.get(name, {}).get(key, "") == ""


def test_feature_code_present_when_enabled():
    report = render(ALL_FEATURES_ON)
    blob = "\n".join(report.files.values())
    assert "profiler" in blob
    assert "tracer" in blob
    assert "overload" in blob
    assert "reap_idle" in blob
    assert "QuotaPriorityQueue" in blob
    assert "rt.SheddingPolicy" in blob
    assert "rt.CircuitBreaker" in blob


def test_dispatcher_threads_expression():
    one = render(ALL_FEATURES_ON).files["reactor.py"]
    two_n = render(dict(ALL_FEATURES_ON, O1="2N")).files["reactor.py"]
    assert "threads=1" in one
    assert "os.cpu_count()" in two_n


def test_generated_options_recorded_in_init():
    report = render(COPS_HTTP_OPTIONS)
    assert "GENERATED_OPTIONS" in report.files["__init__.py"]
    assert "'O6': 'LRU'" in report.files["__init__.py"]


def test_cache_policy_baked_in():
    lru = render(COPS_HTTP_OPTIONS).files["cache.py"]
    assert '"LRU"' in lru
    hyper = render(dict(COPS_HTTP_OPTIONS, O6="Hyper-G")).files["cache.py"]
    assert '"Hyper-G"' in hyper
    threshold = render(dict(COPS_HTTP_OPTIONS, O6="LRU-Threshold")).files["cache.py"]
    assert "make_policy" in threshold
    custom = render(dict(COPS_HTTP_OPTIONS, O6="Custom")).files["cache.py"]
    assert "make_cache_policy()" in custom


def test_generated_size_same_order_as_paper():
    """Table 4 reports 2,697 NCSS of generated code for COPS-HTTP; our
    generated framework should be the same order of magnitude (Python is
    more compact than Java)."""
    from repro.co2p3s import measure_source

    report = render(COPS_HTTP_OPTIONS)
    total = sum(measure_source(t).ncss for t in report.files.values())
    assert 250 <= total <= 5000


# -- Table 2: crosscut reproduction ------------------------------------------------


OPTION_KEYS = [s.key for s in NSERVER.option_specs()]


def _matrix_from(table):
    m = CrosscutMatrix(class_names=TABLE2_CLASS_ORDER,
                       option_keys=list(OPTION_KEYS))
    for name in TABLE2_CLASS_ORDER:
        m.cells[name] = {key: table.get(name, {}).get(key, "")
                         for key in OPTION_KEYS}
    return m


def paper_matrix():
    return _matrix_from(PAPER_TABLE2)


def expected_matrix():
    return _matrix_from(EXPECTED_TABLE2)


def test_empirical_crosscut_reproduces_paper_table2():
    emp = empirical_matrix(NSERVER, ALL_FEATURES_ON,
                           extra_bases=(POOL_TOGGLE_BASE,
                                        DEGRADATION_TOGGLE_BASE,
                                        DEPLOYMENT_TOGGLE_BASE))
    diffs = emp.differences(expected_matrix())
    assert diffs == []
    # The only cells beyond the paper's table are the declared
    # observability extension rows.
    vs_paper = emp.differences(paper_matrix())
    assert vs_paper == [
        (name, key, value, "")
        for name in sorted(TABLE2_EXTENSIONS)
        for key, value in sorted(TABLE2_EXTENSIONS[name].items())
    ]


def test_declared_metadata_matches_empirical():
    emp = empirical_matrix(NSERVER, ALL_FEATURES_ON,
                           extra_bases=(POOL_TOGGLE_BASE,
                                        DEGRADATION_TOGGLE_BASE,
                                        DEPLOYMENT_TOGGLE_BASE))
    dec = declared_matrix(NSERVER, ALL_FEATURES_ON)
    assert emp.differences(dec) == []


def test_format_matrix_renders():
    text = format_matrix(paper_matrix(), title="TABLE 2")
    assert "TABLE 2" in text
    assert "Reactor" in text and "O12" in text


def test_crosscut_every_option_crosscuts_multiple_classes():
    """The motivation for generation over a static framework: most
    options touch several classes."""
    m = paper_matrix()
    for key in (f"O{i}" for i in range(1, 13)):
        touched = sum(1 for name in TABLE2_CLASS_ORDER if m.cell(name, key))
        assert touched >= 1
    # O10 (debug mode) is the most crosscutting: 17 classes in the paper.
    o10 = sum(1 for n in TABLE2_CLASS_ORDER if m.cell(n, "O10"))
    assert o10 == 17
