"""Unit tests for the resilience runtime: per-stage deadlines, worker
supervision, poison-event quarantine, hardened accept, reaper snapshot."""

import errno
import threading
import time
import types

import pytest

from repro.faults import WorkerCrash
from repro.runtime import (
    Acceptor,
    DeadlineMonitor,
    DeadlinePolicy,
    EventProcessor,
    EventQuarantine,
    IdleConnectionReaper,
    UserEvent,
    WorkerSupervisor,
    is_transient_accept_error,
)

pytestmark = [pytest.mark.faults, pytest.mark.timeout(30)]


def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- DeadlineMonitor ------------------------------------------------------------


class FakeConn:
    def __init__(self, name="c"):
        self.closed = False
        self.read_started = None
        self.write_blocked_since = None
        self.oldest = None
        self.handle = types.SimpleNamespace(name=name)

    def oldest_pending_started(self):
        return self.oldest

    def close(self):
        self.closed = True


def monitor_for(conns, now, **policy):
    return DeadlineMonitor(lambda: conns,
                           DeadlinePolicy(**policy),
                           clock=lambda: now[0])


def test_header_deadline_closes_trickling_peer():
    now = [100.0]
    conn = FakeConn("slow")
    conn.read_started = 99.0      # first partial byte buffered at t=99
    mon = monitor_for([conn], now, header=2.0)
    assert mon.scan() == 0        # within budget
    now[0] = 101.5
    assert mon.scan() == 1
    assert conn.closed
    assert mon.reasons == {"header": 1, "request": 0, "write": 0}
    assert mon.timed_out == 1


def test_request_deadline_closes_stuck_handler():
    now = [10.0]
    conn = FakeConn("stuck")
    conn.oldest = 1.0             # request in flight since t=1
    mon = monitor_for([conn], now, request=5.0)
    assert mon.scan() == 1
    assert mon.reasons["request"] == 1


def test_write_deadline_closes_non_reading_peer():
    now = [50.0]
    conn = FakeConn("deaf")
    conn.write_blocked_since = 10.0
    mon = monitor_for([conn], now, write=30.0)
    assert mon.scan() == 1
    assert mon.reasons["write"] == 1


def test_none_disables_a_stage():
    now = [1000.0]
    conn = FakeConn()
    conn.read_started = 0.0
    conn.write_blocked_since = 0.0
    conn.oldest = 0.0
    mon = monitor_for([conn], now, header=None, request=None, write=None)
    assert mon.scan() == 0
    assert not conn.closed


def test_healthy_and_closed_connections_untouched():
    now = [100.0]
    healthy = FakeConn("ok")                 # no stage stamps set
    gone = FakeConn("gone")
    gone.closed = True
    gone.read_started = 0.0                  # would violate if still open
    mon = monitor_for([healthy, gone], now, header=1.0)
    assert mon.scan() == 0
    assert mon.timed_out == 0


# -- WorkerSupervisor -----------------------------------------------------------


def test_worker_crash_is_detected_and_replaced():
    processed = []

    def handler(event):
        if event.payload == "poison":
            raise WorkerCrash("injected")
        processed.append(event.payload)

    proc = EventProcessor(handler, threads=2, name="pool")
    proc.start()
    try:
        proc.submit(UserEvent(payload="poison"))
        assert wait_for(lambda: proc.worker_deaths == 1)
        assert wait_for(lambda: proc.thread_count == 1)

        sup = WorkerSupervisor(proc)
        assert sup.check() == 1               # pruned + replaced
        assert sup.restarts == 1
        assert proc.thread_count == 2
        assert isinstance(proc.last_death, WorkerCrash)

        proc.submit(UserEvent(payload="alive"))
        assert wait_for(lambda: processed == ["alive"])
    finally:
        proc.stop()


def test_supervisor_background_thread_keeps_pool_at_size():
    def handler(event):
        if event.payload == "poison":
            raise WorkerCrash("injected")

    proc = EventProcessor(handler, threads=2, name="pool")
    proc.start()
    sup = WorkerSupervisor(proc, interval=0.01)
    sup.start()
    try:
        for _ in range(3):
            proc.submit(UserEvent(payload="poison"))
        assert wait_for(lambda: proc.worker_deaths == 3)
        assert wait_for(lambda: sup.restarts == 3 and proc.thread_count == 2)
    finally:
        sup.stop()
        proc.stop()


def test_supervisor_is_noop_after_stop():
    proc = EventProcessor(lambda e: None, threads=1)
    proc.start()
    proc.stop()
    sup = WorkerSupervisor(proc)
    assert sup.check() == 0
    assert sup.restarts == 0


# -- EventQuarantine ------------------------------------------------------------


def test_poison_event_retried_then_quarantined():
    attempts = []

    def handler(event):
        attempts.append(event.event_id)
        raise ValueError("still broken")

    proc = EventProcessor(handler, threads=1)
    quarantine = EventQuarantine.attach(proc, max_retries=2)
    proc.start()
    try:
        proc.submit(UserEvent(payload="poison"))
        assert wait_for(lambda: len(quarantine.quarantined) == 1)
        # Initial attempt + two retries, then quarantined — not forever.
        assert len(attempts) == 3
        assert quarantine.retries == 2
        event, exc = quarantine.quarantined[0]
        assert isinstance(exc, ValueError)
        time.sleep(0.05)
        assert len(attempts) == 3            # no further resubmission
    finally:
        proc.stop()


def test_attach_chains_existing_error_hook():
    seen = []

    def tracer_hook(event, exc):
        seen.append((event.payload, type(exc).__name__))

    proc = EventProcessor(
        lambda e: (_ for _ in ()).throw(ValueError("no")),
        threads=1, error_hook=tracer_hook)
    quarantine = EventQuarantine.attach(proc, max_retries=1)
    assert proc.error_hook is quarantine
    assert quarantine.fallback is tracer_hook
    proc.start()
    try:
        proc.submit(UserEvent(payload="p"))
        assert wait_for(lambda: len(quarantine.quarantined) == 1)
        # The chained hook saw the initial failure and the retry.
        assert seen == [("p", "ValueError"), ("p", "ValueError")]
    finally:
        proc.stop()


def test_distinct_events_tracked_separately():
    quarantine = EventQuarantine(max_retries=1, resubmit=lambda e: None)
    a, b = UserEvent(payload="a"), UserEvent(payload="b")
    boom = RuntimeError("x")
    quarantine(a, boom)
    quarantine(b, boom)
    assert quarantine.retries == 2 and not quarantine.quarantined
    quarantine(a, boom)
    assert [e.payload for e, _ in quarantine.quarantined] == ["a"]


# -- hardened accept loop --------------------------------------------------------


class FlakyListen:
    def __init__(self, errnos):
        self.errnos = list(errnos)
        self.closed = False
        self.calls = 0

    def try_accept(self):
        self.calls += 1
        if self.errnos:
            raise OSError(self.errnos.pop(0), "injected")
        return None


class NullSource:
    def register(self, handle):
        pass

    def deregister(self, handle):
        pass


def test_transient_accept_error_classification():
    assert is_transient_accept_error(OSError(errno.ECONNABORTED, ""))
    assert is_transient_accept_error(OSError(errno.EINTR, ""))
    assert not is_transient_accept_error(OSError(errno.EMFILE, ""))
    assert not is_transient_accept_error(OSError(errno.ENFILE, ""))
    assert not is_transient_accept_error(ValueError())


def test_acceptor_survives_econnaborted_and_keeps_draining():
    listen = FlakyListen([errno.ECONNABORTED, errno.ECONNABORTED])
    acceptor = Acceptor(listen, NullSource(), on_connection=lambda h: None,
                        backoff=0.001)
    acceptor.handle(None)          # must not raise
    assert acceptor.accept_errors == 2
    assert listen.calls == 3       # two aborted retries + the final None


def test_acceptor_backs_off_on_emfile():
    listen = FlakyListen([errno.EMFILE])
    acceptor = Acceptor(listen, NullSource(), on_connection=lambda h: None,
                        backoff=0.001)
    acceptor.handle(None)
    assert acceptor.accept_errors == 1
    assert listen.calls == 1       # shed: no immediate retry
    acceptor.handle(None)          # next event drains normally
    assert listen.calls == 2


# -- idle reaper snapshot ---------------------------------------------------------


def test_reaper_scan_survives_concurrent_watch_unwatch():
    """The scan snapshots the registry, so watch/unwatch racing it can
    never raise dictionary-changed-during-iteration."""
    reaper = IdleConnectionReaper(idle_limit=0.001, on_idle=lambda h: None)

    def mk(idle):
        h = types.SimpleNamespace(closed=False, last_activity=0.0
                                  if idle else time.monotonic() + 60)
        return h

    for _ in range(50):
        reaper.watch(mk(idle=True))

    stop = threading.Event()
    errors = []

    def churn():
        try:
            while not stop.is_set():
                h = mk(idle=False)
                reaper.watch(h)
                reaper.unwatch(h)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    churner = threading.Thread(target=churn)
    churner.start()
    try:
        total = 0
        for _ in range(20):
            total += reaper.scan()
    finally:
        stop.set()
        churner.join(timeout=5)
    assert not errors
    assert total == 50


def test_reaper_on_idle_can_reenter_registry():
    """on_idle tearing a connection down calls unwatch — the scan must
    tolerate re-entry because callbacks run outside the lock."""
    reaper = IdleConnectionReaper(idle_limit=0.001,
                                  on_idle=lambda h: reaper.unwatch(h))
    handles = [types.SimpleNamespace(closed=False, last_activity=0.0)
               for _ in range(10)]
    for h in handles:
        reaper.watch(h)
    assert reaper.scan() == 10
    assert reaper.watched_count == 0
