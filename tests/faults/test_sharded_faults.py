"""Fault storm against the sharded shape: a seeded WorkerCrash kills
one shard's Event Processor worker mid-event; that shard's O13
supervisor respawns it while the other shards keep serving — the blast
radius of a worker death is one shard, not the server."""

import pytest

from harness import ServerFixture, wait_until
from repro.faults import FaultPlane, FaultSpec
from repro.runtime import RuntimeConfig, ServerHooks, ShardedReactorServer

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]

#: with handler_crash=0.3, seed 4 injects exactly one crash in twelve
#: handle() calls — at call index 3, which round-robin over three
#: shards places on shard 0 (its second connection)
SEED = 4
CRASH_INDEX = 3


class PingHooks(ServerHooks):
    def decode(self, raw, conn):
        return raw.strip().decode()

    def handle(self, request, conn):
        return request.upper()

    def encode(self, result, conn):
        return result.encode() + b"\n"


def attempt(fixture, timeout=1.0) -> bytes:
    """One request; b'' when the injected crash eats the reply."""
    try:
        return fixture.request(b"ping\n", timeout=timeout)
    except OSError:
        return b""


def test_worker_crash_stays_inside_one_shard(tmp_path):
    plane = FaultPlane(FaultSpec(handler_crash=0.3), seed=SEED)
    cfg = RuntimeConfig(async_completions=False, fault_tolerance=True,
                        supervision_interval=0.02, processor_threads=2,
                        profiling=True)
    server = ShardedReactorServer(plane.wrap_hooks(PingHooks()), cfg,
                                  shards=3)
    plane.install(server)
    with ServerFixture(server) as fixture:
        outcomes = [attempt(fixture) for _ in range(12)]

        # The seeded crash ate exactly one reply; every other request —
        # including later ones on the crashed shard — was served.
        assert outcomes[CRASH_INDEX] == b""
        assert all(outcomes[i] == b"PING\n"
                   for i in range(12) if i != CRASH_INDEX), outcomes
        assert [a.kind for a in plane.schedule.actions("handler")
                ].count("crash") == 1

        # Round-robin spread the twelve connections evenly — the other
        # shards were serving while shard 0 took the hit.
        assert server.accepted_per_shard == [4, 4, 4]

        # The supervisor on the crashed shard — and only that shard —
        # replaced the dead worker, restoring the pool to full strength.
        wait_until(lambda: server.shards[0].supervisor.restarts >= 1,
                   message="supervisor never replaced the dead worker")
        assert [s.supervisor.restarts for s in server.shards] == [1, 0, 0]
        wait_until(lambda: server.shards[0].processor.thread_count == 2,
                   message="worker pool never restored to full strength")

        # Restart counters surface in the aggregated status report.
        fields = dict(server.status_fields())
        assert float(fields["server_worker_restarts_total"]) == 1
        assert float(fields['server_worker_restarts_total{shard="0"}']) == 1
