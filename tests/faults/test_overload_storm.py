"""The overload storm: a 3-shard server at its connection cap under a
seeded fault schedule, hammered with more connections than it will take.

Acceptance criteria for the O17 degradation plane (the robustness
counterpart of test_fault_storm_trace's crash storm):

* every admitted request completes, with bounded latency;
* every connection over capacity gets a *well-formed* 503 with a
  ``Retry-After`` header — cheap explicit rejection, not a silent stall
  in the kernel backlog;
* zero worker deaths: shedding happens on the accept plane, so the
  storm never touches the shards' Event Processors;
* the evidence is on the record: shed decisions (with reason codes and
  trace ids) in the accept-plane flight ring, a ``sustained-overload``
  dump on disk from the streak trigger, and the span exporter knowing
  exactly the admitted — and none of the shed — connections.
"""

import os
import socket
import time

import pytest

from harness import ServerFixture, wait_until
from repro.faults import FaultPlane, FaultSpec
from repro.obs.flight import parse_dump
from repro.runtime import RuntimeConfig, ServerHooks, ShardedReactorServer

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]

SEED = 11
SHARDS = 3
PER_SHARD_CAP = 2
CAPACITY = SHARDS * PER_SHARD_CAP
STORM = 15          # rejected connections on top of a full house
AFTERMATH = 20      # admitted requests once the storm clears
DUMP_AFTER = 5      # sustained-overload streak trigger


class PingHooks(ServerHooks):
    def decode(self, raw, conn):
        return raw.strip().decode()

    def handle(self, request, conn):
        return request.upper()

    def encode(self, result, conn):
        return result.encode() + b"\n"


def drain(sock, timeout=5.0) -> bytes:
    """Read until EOF (the rejection path always closes)."""
    sock.settimeout(timeout)
    chunks = []
    while True:
        chunk = sock.recv(4096)
        if not chunk:
            return b"".join(chunks)
        chunks.append(chunk)


def parse_http(payload: bytes):
    head, _, body = payload.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(b": ")
        headers[name.decode().lower()] = value.decode()
    return lines[0], headers, body


def test_overload_storm_sheds_gracefully(tmp_path):
    dump_dir = tmp_path / "dumps"
    probe_dir = tmp_path / "probe"
    dump_dir.mkdir()
    probe_dir.mkdir()

    # Seeded socket-level noise (fragmented reads, spurious readiness)
    # keeps the admitted path honest; no handler or send faults, so
    # every admission decision — and every 503 — stays deterministic.
    plane = FaultPlane(FaultSpec(partial_read=0.2, recv_eagain=0.1),
                       seed=SEED)
    cfg = RuntimeConfig(
        async_completions=False, fault_tolerance=True,
        supervision_interval=0.02, processor_threads=2,
        profiling=True, flight_dump_dir=str(dump_dir),
        degradation=True,
        max_connections=PER_SHARD_CAP,
        overload_dump_after=DUMP_AFTER,
        shed_retry_after=2.0,
        # the whole storm comes from 127.0.0.1 — keep the per-client
        # limiter out of the way so the connection cap decides alone
        shed_rate=1e6, shed_burst=1e6,
    )
    server = ShardedReactorServer(plane.wrap_hooks(PingHooks()), cfg,
                                  shards=SHARDS)
    plane.install(server)

    with ServerFixture(server) as fixture:
        # -- fill the house: CAPACITY held connections, one request each
        occupiers = []
        for _ in range(CAPACITY):
            sock = fixture.connect()
            sock.sendall(b"ping\n")
            assert fixture.read_line(sock) == b"PING\n"
            occupiers.append(sock)
        wait_until(
            lambda: all(s.overload.at_connection_limit()
                        for s in server.shards),
            message="shards never reached the connection cap")

        # -- the storm: every connection over capacity is rejected with
        # a complete, parseable 503 and then closed by the server
        for _ in range(STORM):
            with socket.create_connection(("127.0.0.1", fixture.port)) as sock:
                status, headers, body = parse_http(drain(sock))
            assert status == b"HTTP/1.1 503 Service Unavailable"
            assert headers["retry-after"] == "2"
            assert headers["connection"] == "close"
            assert int(headers["content-length"]) == len(body)
            assert body == b"503 Service Unavailable\r\n"

        assert server.shedding.shed_total == STORM
        assert server.acceptor.rejected == STORM
        status = server.degradation_status()
        assert status["shed"]["shed_total"] == STORM
        assert status["shed"]["shed_by_reason"] == {"max-connections": STORM}

        # -- the sustained streak dumped the evidence on its own
        wait_until(
            lambda: any("sustained-overload" in name
                        for name in os.listdir(dump_dir)),
            message="sustained overload never dumped a flight ring")

        # -- storm over: release the house and the server recovers
        for sock in occupiers:
            sock.close()
        wait_until(
            lambda: sum(s.overload.open_connections
                        for s in server.shards) == 0,
            message="closed connections never drained")

        latencies = []
        for _ in range(AFTERMATH):
            started = time.monotonic()
            assert fixture.request(b"ping\n", timeout=5.0) == b"PING\n"
            latencies.append(time.monotonic() - started)
        latencies.sort()
        p99 = latencies[int(0.99 * (len(latencies) - 1))]
        assert p99 < 2.0, f"admitted p99 {p99:.3f}s not bounded"

        # -- zero worker deaths: the storm never reached a shard
        for shard in server.shards:
            assert shard.supervisor.restarts == 0

        server.flight.snapshot("probe", directory=str(probe_dir))
        exported = server.trace_records()

    # -- reconstruction from the dump alone ------------------------------
    (dump,) = os.listdir(probe_dir)
    with open(probe_dir / dump, encoding="utf-8") as fh:
        events = parse_dump(fh.read())

    sheds = [e for e in events if e.category == "shed"]
    assert len(sheds) == STORM
    assert all("reason=max-connections" in e.detail for e in sheds)
    assert all("client=127.0.0.1" in e.detail for e in sheds)

    accepts = {e.trace_id for e in events if e.category == "accept"}
    shed_ids = {e.trace_id for e in sheds}
    assert len(accepts) == CAPACITY + STORM + AFTERMATH
    assert shed_ids <= accepts
    assert all(trace_id != 0 for trace_id in shed_ids)

    # The exporter knows every admitted connection and no shed one: a
    # rejected connection costs one canned write — never a span.
    exported_ids = {record["trace_id"] for record in exported}
    assert exported_ids == accepts - shed_ids
    assert not (exported_ids & shed_ids)
    for record in exported:
        assert [s["stage"] for s in record["stages"]] == \
            ["decode", "handle", "encode"]
