"""The acceptance storm: a seeded fault against a sharded server, then
the full per-request path — accept, shard placement, worker dispatch,
stage bracketing, the injected fault, reply completion — reconstructed
*purely* from flight-recorder dump files plus the trace exporter's
records, never from live server state."""

import os

import pytest

from harness import ServerFixture, wait_until
from repro.faults import FaultPlane, FaultSpec
from repro.obs.flight import parse_dump, reconstruct_path
from repro.runtime import RuntimeConfig, ServerHooks, ShardedReactorServer

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]

#: the seeded schedule of test_sharded_faults: handler_crash=0.3 under
#: seed 4 crashes exactly one handle() call — request index 3
SEED = 4
CRASH_INDEX = 3
REQUESTS = 12


class PingHooks(ServerHooks):
    def decode(self, raw, conn):
        return raw.strip().decode()

    def handle(self, request, conn):
        return request.upper()

    def encode(self, result, conn):
        return result.encode() + b"\n"


def attempt(fixture, timeout=1.0) -> bytes:
    try:
        return fixture.request(b"ping\n", timeout=timeout)
    except OSError:
        return b""


def load_events(directory):
    """Every flight event in every dump file under ``directory``."""
    events = []
    for filename in sorted(os.listdir(directory)):
        with open(os.path.join(directory, filename),
                  encoding="utf-8") as fh:
            events.extend(parse_dump(fh.read()))
    return events


def test_fault_storm_path_reconstructed_from_dumps(tmp_path):
    auto_dir = tmp_path / "auto"        # where crash-triggered dumps land
    probe_dir = tmp_path / "probe"      # the explicit end-of-run snapshot
    auto_dir.mkdir()
    probe_dir.mkdir()

    plane = FaultPlane(FaultSpec(handler_crash=0.3), seed=SEED)
    cfg = RuntimeConfig(async_completions=False, fault_tolerance=True,
                        supervision_interval=0.02, processor_threads=2,
                        profiling=True, flight_dump_dir=str(auto_dir))
    server = ShardedReactorServer(plane.wrap_hooks(PingHooks()), cfg,
                                  shards=3)
    plane.install(server)
    with ServerFixture(server) as fixture:
        outcomes = [attempt(fixture) for _ in range(REQUESTS)]
        assert outcomes[CRASH_INDEX] == b""
        assert all(outcomes[i] == b"PING\n"
                   for i in range(REQUESTS) if i != CRASH_INDEX), outcomes

        # The worker death dumped the victim shard's ring on its own —
        # the always-on story: the evidence hits disk before anyone asks.
        wait_until(lambda: server.shards[0].supervisor.restarts >= 1,
                   message="supervisor never replaced the dead worker")
        auto_dumps = [name for name in os.listdir(auto_dir)
                      if "worker-death" in name]
        assert auto_dumps, "worker death produced no flight dump"

        # One snapshot per recorder plane, then stop looking at the
        # server: the reconstruction below reads only files and the
        # exporter's record list.
        server.flight.snapshot("probe", directory=str(probe_dir))
        for shard in server.shards:
            shard.flight.snapshot("probe", directory=str(probe_dir))
        exported = server.trace_records()

    events = load_events(probe_dir)

    # The injected fault is on the record, naming its victim trace.
    faults = [e for e in events if e.category == "fault"]
    assert len(faults) == 1
    assert "handle" in faults[0].detail and "crash" in faults[0].detail
    victim = faults[0].trace_id
    assert victim != 0

    accepts = {e.trace_id for e in events if e.category == "accept"}
    completed = {e.trace_id for e in events
                 if e.category == "write-complete"}
    assert len(accepts) == REQUESTS
    assert victim in accepts and victim not in completed
    assert len(completed) == REQUESTS - 1

    # The victim's reconstructed path: accepted, placed on a shard,
    # dispatched to a worker, through decode, into handle — where the
    # fault fired — and never out.
    path = reconstruct_path(victim, events)
    assert [e.category for e in path] == [
        "accept", "adopt", "dispatch",
        "stage-enter", "stage-exit",      # decode
        "stage-enter",                    # handle...
        "fault"]                          # ...which crashed the worker
    assert path[3].detail == "decode" and path[5].detail == "handle"
    assert path[1].detail.startswith("shard=")

    # A survivor's path tells the whole five-step story through to the
    # flushed reply — on the same shard the adopt event names.
    survivor = sorted(completed)[0]
    path = reconstruct_path(survivor, events)
    assert [e.category for e in path] == [
        "accept", "adopt", "dispatch",
        "stage-enter", "stage-exit",      # decode
        "stage-enter", "stage-exit",      # handle
        "stage-enter", "stage-exit",      # encode
        "write-complete"]
    assert [e.detail for e in path[3:9]] == [
        "decode", "decode", "handle", "handle", "encode", "encode"]

    # The exporter agrees: one finished span per accepted request, the
    # victim's span cut short before encode, the survivors' complete.
    assert {record["trace_id"] for record in exported} == accepts
    by_trace = {record["trace_id"]: record for record in exported}
    victim_stages = [s["stage"] for s in by_trace[victim]["stages"]]
    assert "encode" not in victim_stages and "handle" in victim_stages
    survivor_stages = [s["stage"] for s in by_trace[survivor]["stages"]]
    assert survivor_stages == ["decode", "handle", "encode"]
