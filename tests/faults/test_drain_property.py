"""Graceful-drain property: a request the server has already accepted
into its pipeline — and that completes before the drain deadline — is
never lost.  The client must receive the full reply even though drain
was initiated while the request was still being handled."""

import socket
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import ReactorServer, RuntimeConfig, ServerHooks

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]


class SlowUpperHooks(ServerHooks):
    """Echo-upper with a deliberate handling delay, so drain always
    overlaps in-flight work."""

    def __init__(self, delay: float):
        self.delay = delay
        self.started = 0

    def handle(self, request, conn):
        self.started += 1
        time.sleep(self.delay)
        return request.upper()


payloads = st.lists(
    st.binary(min_size=1, max_size=64).map(
        lambda b: b.replace(b"\n", b"x") or b"y"),
    min_size=1, max_size=3)


@settings(max_examples=10, deadline=None)
@given(batch=payloads)
def test_drain_never_loses_accepted_requests(batch):
    hooks = SlowUpperHooks(delay=0.03)
    config = RuntimeConfig(
        fault_tolerance=True,
        drain_timeout=10.0,
        processor_threads=2,
    )
    server = ReactorServer(hooks, config)
    server.start()
    try:
        client = socket.create_connection(("127.0.0.1", server.port),
                                          timeout=10)
        client.settimeout(10)
        try:
            wire = b"".join(p + b"\n" for p in batch)
            client.sendall(wire)

            # Wait until the server has pulled at least the first request
            # into its pipeline, then drain mid-flight.
            deadline = time.monotonic() + 5
            while hooks.started == 0 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert hooks.started > 0, "request never entered the pipeline"

            drained = server.drain()
            assert drained, "server did not reach quiescence"

            # Every request the server accepted before the listener
            # closed must have produced its complete reply.
            expected = wire.upper()
            got = b""
            while len(got) < len(expected):
                chunk = client.recv(4096)
                if not chunk:
                    break
                got += chunk
            assert got == expected
        finally:
            client.close()
    finally:
        server.stop()
