"""Fault-injecting socket handles over a real socketpair: the wrapper
must surface exactly the syscall outcomes the schedule dictates."""

import socket

import pytest

from repro.faults import FaultSchedule, FaultSpec, faulty_handle_cls

pytestmark = [pytest.mark.faults, pytest.mark.timeout(30)]


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    a.setblocking(False)
    yield a, b
    a.close()
    b.close()


def make_handle(spec, sock, seed=0):
    schedule = FaultSchedule(spec, seed=seed)
    cls = faulty_handle_cls(schedule)
    return cls(sock, name="test"), schedule


def test_injected_eagain_hides_available_data(pair):
    a, b = pair
    handle, _ = make_handle(FaultSpec(recv_eagain=1.0), a)
    b.sendall(b"hello")
    assert handle.try_recv() is None       # data is there; the fault lies
    assert not handle.closed


def test_injected_reset_closes_midstream(pair):
    a, b = pair
    handle, _ = make_handle(FaultSpec(recv_reset=1.0), a)
    b.sendall(b"hello")
    assert handle.try_recv() == b""        # EOF-like: runtime tears down
    assert handle.closed


def test_partial_read_caps_bytes(pair):
    a, b = pair
    handle, _ = make_handle(
        FaultSpec(partial_read=1.0, partial_read_bytes=3), a)
    b.sendall(b"abcdefgh")
    assert handle.try_recv() == b"abc"
    assert handle.try_recv() == b"def"


def test_partial_write_trickles_output(pair):
    a, b = pair
    handle, _ = make_handle(
        FaultSpec(partial_write=1.0, partial_write_bytes=2), a)
    handle.out_buffer.extend(b"abcdef")
    assert handle.try_send() == 2
    assert bytes(handle.out_buffer) == b"cdef"
    assert b.recv(16) == b"ab"


def test_send_eagain_makes_no_progress(pair):
    a, b = pair
    handle, _ = make_handle(FaultSpec(send_eagain=1.0), a)
    handle.out_buffer.extend(b"xyz")
    assert handle.try_send() == 0
    assert bytes(handle.out_buffer) == b"xyz"


def test_clean_schedule_behaves_like_base(pair):
    a, b = pair
    handle, schedule = make_handle(FaultSpec(), a)
    b.sendall(b"ping")
    assert handle.try_recv() == b"ping"
    handle.out_buffer.extend(b"pong")
    assert handle.try_send() == 4
    assert b.recv(16) == b"pong"
    assert schedule.counts() == {}


def test_each_handle_gets_its_own_stream(pair):
    a, b = pair
    schedule = FaultSchedule(FaultSpec(), seed=0)
    cls = faulty_handle_cls(schedule)
    h1 = cls(a, name="one")
    h2 = cls(b, name="two")
    assert h1.fault_stream == "conn-0"
    assert h2.fault_stream == "conn-1"
