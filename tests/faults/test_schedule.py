"""Seeded fault-schedule determinism: the property the whole fault
plane rests on — same spec + same seed => identical per-stream decision
sequences, regardless of how streams interleave."""

import pytest

from repro.faults import FaultSchedule, FaultSpec

pytestmark = [pytest.mark.faults, pytest.mark.timeout(30)]


SPEC = FaultSpec(recv_reset=0.1, recv_eagain=0.2, partial_read=0.3,
                 send_reset=0.05, send_eagain=0.1, partial_write=0.2,
                 disk_error=0.3, handler_error=0.2, handler_crash=0.05)


def drain(schedule, stream, op, n=50):
    return [schedule.decide(op, stream) for _ in range(n)]


def test_same_seed_same_per_stream_sequence():
    a = FaultSchedule(SPEC, seed=42)
    b = FaultSchedule(SPEC, seed=42)
    for stream, op in (("conn-0", "recv"), ("conn-1", "send"),
                       ("disk", "disk"), ("handler", "handle")):
        assert drain(a, stream, op) == drain(b, stream, op)


def test_different_seed_differs():
    a = FaultSchedule(SPEC, seed=1)
    b = FaultSchedule(SPEC, seed=2)
    assert drain(a, "conn-0", "recv", 200) != drain(b, "conn-0", "recv", 200)


def test_streams_are_independent():
    """Interleaving draws on other streams must not perturb a stream's
    own sequence — that is what makes per-connection replays exact."""
    alone = FaultSchedule(SPEC, seed=7)
    expected = drain(alone, "conn-0", "recv")

    noisy = FaultSchedule(SPEC, seed=7)
    got = []
    for i in range(50):
        noisy.decide("send", "conn-1")    # interleaved noise
        got.append(noisy.decide("recv", "conn-0"))
        noisy.decide("disk", "disk")
    assert got == expected


def test_next_stream_names_by_arrival_order():
    s = FaultSchedule(SPEC, seed=0)
    assert s.next_stream() == "conn-0"
    assert s.next_stream() == "conn-1"
    assert s.next_stream("client") == "client-0"
    assert s.next_stream() == "conn-2"


def test_action_log_and_counts():
    s = FaultSchedule(FaultSpec(recv_reset=1.0), seed=0)
    assert s.decide("recv", "conn-0") == "reset"
    assert s.decide("send", "conn-0") == "ok"   # send has no faults
    actions = s.actions("conn-0")
    assert [(a.seq, a.op, a.kind) for a in actions] == [
        (0, "recv", "reset"), (1, "send", "ok")]
    assert s.injected("conn-0")[0].kind == "reset"
    assert s.counts() == {"reset": 1}


def test_zero_probability_spec_never_faults():
    s = FaultSchedule(FaultSpec(), seed=123)
    assert all(k == "ok" for k in drain(s, "conn-0", "recv", 100))
    assert s.counts() == {}
