"""Acceptance: COPS-HTTP generated with O11+O13 survives a seeded fault
schedule combining slow-peer trickle, mid-stream resets and injected
handler exceptions — while still serving healthy connections — with the
resilience counters visible on ``/server-status?auto`` and a graceful
drain through the generated facade."""

import socket
import time

import pytest

from repro.co2p3s.nserver import COPS_HTTP_RESILIENCE_OPTIONS
from repro.faults import FaultPlane, FaultSpec, abrupt_reset, trickle_send
from repro.servers.cops_http import CopsHttpHooks, build_cops_http

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]

SEED = 11


def get(port, path, timeout=5.0) -> bytes:
    """One-shot HTTP GET; returns the raw response (b'' if the server
    dropped the connection — e.g. an injected handler fault)."""
    try:
        s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    except OSError:
        return b""
    s.settimeout(timeout)
    data = b""
    try:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: t\r\n"
                  "Connection: close\r\n\r\n".encode())
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            data += chunk
    except OSError:
        pass
    finally:
        s.close()
    return data


def get_until_ok(port, path, attempts=8):
    """Retry around injected handler faults (deterministic per seed)."""
    for _ in range(attempts):
        response = get(port, path)
        if response.startswith(b"HTTP/1.1 200"):
            return response
    raise AssertionError(f"no 200 for {path} in {attempts} attempts")


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


@pytest.fixture
def faulted_server(tmp_path):
    docroot = tmp_path / "docroot"
    docroot.mkdir()
    (docroot / "index.html").write_text("<html>hello fault plane</html>")

    plane = FaultPlane(FaultSpec(handler_error=0.35), seed=SEED)
    server, fw, _report = build_cops_http(
        str(docroot),
        options=COPS_HTTP_RESILIENCE_OPTIONS,
        hooks=plane.wrap_hooks(CopsHttpHooks()),
        dest=str(tmp_path),
        package="cops_http_faults_fw",
        header_timeout=0.4,
        deadline_interval=0.02,
        drain_timeout=5.0,
    )
    plane.install(server)
    server.start()
    stopped = []
    try:
        yield server, fw, plane, stopped
    finally:
        if not stopped:
            server.stop()


def test_cops_http_serves_through_seeded_fault_storm(faulted_server):
    server, fw, plane, stopped = faulted_server
    port = server.port
    resilience = server.reactor.resilience

    # -- phase 1: normal traffic with injected handler exceptions --------
    outcomes = [get(port, "/index.html") for _ in range(8)]
    oks = [r for r in outcomes if r.startswith(b"HTTP/1.1 200")]
    drops = [r for r in outcomes if not r]
    assert oks, "every request failed — the server is not serving"
    assert b"hello fault plane" in oks[0]
    assert drops, f"seed {SEED} injected no handler fault in 8 requests"
    assert plane.counts().get("error", 0) >= 1

    # -- phase 2: slow-loris trickle hits the header deadline -------------
    loris = socket.create_connection(("127.0.0.1", port), timeout=5)
    trickle_send(loris, b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n",
                 chunk=1, delay=0.05,
                 deadline=time.monotonic() + 5.0)
    loris.close()
    assert wait_for(lambda: resilience.deadlines.timed_out >= 1), \
        "deadline monitor never closed the trickling peer"
    assert resilience.deadlines.reasons["header"] >= 1

    # -- phase 3: mid-stream RST must not wedge anything -------------------
    rst = socket.create_connection(("127.0.0.1", port), timeout=5)
    rst.sendall(b"GET /index")          # incomplete request...
    abrupt_reset(rst)                   # ...then a genuine ECONNRESET

    # -- phase 4: the server still serves healthy connections --------------
    assert b"hello fault plane" in get_until_ok(port, "/index.html")

    # -- phase 5: resilience counters on /server-status?auto ----------------
    status = get_until_ok(port, "/server-status?auto")
    body = status.split(b"\r\n\r\n", 1)[1].decode()
    fields = dict(line.split(": ", 1) for line in body.splitlines()
                  if ": " in line)
    assert float(fields["server_deadline_timeouts_total"]) >= 1
    # Registered at construction, so present even while still zero.
    assert "server_worker_restarts_total" in fields
    assert "server_quarantined_events_total" in fields

    # -- phase 6: graceful drain through the generated facade ---------------
    assert fw.Server.drain is not None
    assert server.drain() is True
    stopped.append(True)


def test_fault_log_is_replayable(tmp_path):
    """Two runs with the same seed inject the same handler-fault pattern
    — the property that makes a failing fault run reproducible."""
    patterns = []
    for run in range(2):
        docroot = tmp_path / f"docroot{run}"
        docroot.mkdir()
        (docroot / "index.html").write_text("x")
        plane = FaultPlane(FaultSpec(handler_error=0.35), seed=SEED)
        server, _fw, _report = build_cops_http(
            str(docroot),
            options=COPS_HTTP_RESILIENCE_OPTIONS,
            hooks=plane.wrap_hooks(CopsHttpHooks()),
            dest=str(tmp_path / f"build{run}"),
            package=f"cops_http_replay{run}_fw",
        )
        plane.install(server)
        server.start()
        try:
            outcomes = [bool(get(server.port, "/index.html"))
                        for _ in range(10)]
        finally:
            server.stop()
        patterns.append((outcomes,
                         [a.kind for a in plane.schedule.actions("handler")]))
    assert patterns[0] == patterns[1]
