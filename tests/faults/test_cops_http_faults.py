"""Acceptance: COPS-HTTP generated with O11+O13 survives a seeded fault
schedule combining slow-peer trickle, mid-stream resets and injected
handler exceptions — while still serving healthy connections — with the
resilience counters visible on ``/server-status?auto`` and a graceful
drain through the generated facade.

Synchronization discipline: no ``time.sleep()`` — cross-thread state is
awaited with ``harness.wait_until`` and lifecycles run inside
``harness.ServerFixture``."""

import socket
import time

import pytest

from harness import ServerFixture, wait_until
from repro.co2p3s.nserver import COPS_HTTP_RESILIENCE_OPTIONS
from repro.faults import FaultPlane, FaultSpec, abrupt_reset, trickle_send
from repro.servers.cops_http import CopsHttpHooks, build_cops_http

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]

SEED = 11


@pytest.fixture
def faulted_server(tmp_path):
    docroot = tmp_path / "docroot"
    docroot.mkdir()
    (docroot / "index.html").write_text("<html>hello fault plane</html>")

    plane = FaultPlane(FaultSpec(handler_error=0.35), seed=SEED)
    server, fw, _report = build_cops_http(
        str(docroot),
        options=COPS_HTTP_RESILIENCE_OPTIONS,
        hooks=plane.wrap_hooks(CopsHttpHooks()),
        dest=str(tmp_path),
        package="cops_http_faults_fw",
        header_timeout=0.4,
        deadline_interval=0.02,
        drain_timeout=5.0,
    )
    plane.install(server)
    with ServerFixture(server) as fixture:
        yield fixture, fw, plane


def test_cops_http_serves_through_seeded_fault_storm(faulted_server):
    fixture, fw, plane = faulted_server
    server = fixture.server
    resilience = server.reactor.resilience

    # -- phase 1: normal traffic with injected handler exceptions --------
    outcomes = [fixture.http_get("/index.html") for _ in range(8)]
    oks = [r for r in outcomes if r.startswith(b"HTTP/1.1 200")]
    drops = [r for r in outcomes if not r]
    assert oks, "every request failed — the server is not serving"
    assert b"hello fault plane" in oks[0]
    assert drops, f"seed {SEED} injected no handler fault in 8 requests"
    assert plane.counts().get("error", 0) >= 1

    # -- phase 2: slow-loris trickle hits the header deadline -------------
    loris = fixture.connect()
    trickle_send(loris, b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n",
                 chunk=1, delay=0.05,
                 deadline=time.monotonic() + 5.0)
    loris.close()
    wait_until(lambda: resilience.deadlines.timed_out >= 1,
               message="deadline monitor never closed the trickling peer")
    assert resilience.deadlines.reasons["header"] >= 1

    # -- phase 3: mid-stream RST must not wedge anything -------------------
    rst = fixture.connect()
    rst.sendall(b"GET /index")          # incomplete request...
    abrupt_reset(rst)                   # ...then a genuine ECONNRESET

    # -- phase 4: the server still serves healthy connections --------------
    assert b"hello fault plane" in fixture.http_get_until_ok("/index.html")

    # -- phase 5: resilience counters on /server-status?auto ----------------
    status = fixture.http_get_until_ok("/server-status?auto")
    body = status.split(b"\r\n\r\n", 1)[1].decode()
    fields = dict(line.split(": ", 1) for line in body.splitlines()
                  if ": " in line)
    assert float(fields["server_deadline_timeouts_total"]) >= 1
    # Registered at construction, so present even while still zero.
    assert "server_worker_restarts_total" in fields
    assert "server_quarantined_events_total" in fields

    # -- phase 6: graceful drain through the generated facade ---------------
    assert fw.Server.drain is not None
    assert server.drain() is True
    fixture.mark_stopped()


def test_fault_log_is_replayable(tmp_path):
    """Two runs with the same seed inject the same handler-fault pattern
    — the property that makes a failing fault run reproducible."""
    patterns = []
    for run in range(2):
        docroot = tmp_path / f"docroot{run}"
        docroot.mkdir()
        (docroot / "index.html").write_text("x")
        plane = FaultPlane(FaultSpec(handler_error=0.35), seed=SEED)
        server, _fw, _report = build_cops_http(
            str(docroot),
            options=COPS_HTTP_RESILIENCE_OPTIONS,
            hooks=plane.wrap_hooks(CopsHttpHooks()),
            dest=str(tmp_path / f"build{run}"),
            package=f"cops_http_replay{run}_fw",
        )
        plane.install(server)
        with ServerFixture(server) as fixture:
            outcomes = [bool(fixture.http_get("/index.html"))
                        for _ in range(10)]
        patterns.append((outcomes,
                         [a.kind for a in plane.schedule.actions("handler")]))
    assert patterns[0] == patterns[1]
