"""Tests for fairness, stats and report rendering."""

import pytest

from repro.analysis import jain_index, render_series, render_table, summarize


# -- Jain index (the paper's Fig 4 metric) -----------------------------------


def test_jain_equal_allocations_is_one():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_k_of_n_property():
    """If k clients receive equal service and the rest none, f = k/N."""
    for k, n in ((1, 10), (5, 10), (150, 1024)):
        values = [7] * k + [0] * (n - k)
        assert jain_index(values) == pytest.approx(k / n)


def test_jain_paper_number():
    # 0.51 at 1024 clients corresponds to ~522 equally-served clients.
    values = [10] * 522 + [0] * (1024 - 522)
    assert jain_index(values) == pytest.approx(0.51, abs=0.01)


def test_jain_empty_and_zero():
    assert jain_index([]) == 1.0
    assert jain_index([0, 0, 0]) == 1.0


def test_jain_rejects_negative():
    with pytest.raises(ValueError):
        jain_index([1, -2])


def test_jain_mild_skew_between_bounds():
    f = jain_index([10, 8, 12, 10])
    assert 0.9 < f < 1.0


# -- summaries ----------------------------------------------------------------------


def test_summarize_values():
    s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.count == 5
    assert s.mean == pytest.approx(3.0)
    assert s.median == pytest.approx(3.0)
    assert s.minimum == 1.0 and s.maximum == 5.0


def test_summarize_empty_is_none():
    assert summarize([]) is None


def test_percentiles_ordered():
    s = summarize(range(1000))
    assert s.median <= s.p90 <= s.p99 <= s.maximum


# -- rendering ------------------------------------------------------------------------


def test_render_table_alignment():
    out = render_table(["name", "value"], [["a", 1], ["long-name", 22]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert lines[2].startswith("---")
    assert len(lines) == 5


def test_render_series_columns():
    out = render_series("x", [1, 2], {"a": [10.0, 20.0], "b": [1.5, None]})
    assert "10.0" in out and "20.0" in out
    assert "-" in out  # the None cell
