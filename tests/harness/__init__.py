"""Deterministic concurrency harness for the socket-level tests.

Three small tools replace ad-hoc ``time.sleep()`` synchronization:

* :class:`FakeClock` — a manually advanced monotonic clock for
  components that accept a ``clock`` callable (e.g. the idle reaper),
  so deadline logic is tested without real waiting;
* :func:`wait_until` — poll a predicate with a deadline and a helpful
  failure message, the one sanctioned way to wait for cross-thread
  state (counters, tracer records) to become visible;
* :class:`ServerFixture` — a context manager owning a started server's
  lifecycle plus the client-side plumbing every integration test was
  re-implementing (connect, framed request/response, raw HTTP GET).

The package lives under ``tests/`` (made importable as ``harness`` by
``tests/conftest.py``) because it is test infrastructure, not library
code: nothing under ``src/`` may depend on it.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Optional

__all__ = ["FakeClock", "FakeHandle", "ServerFixture", "feed",
           "wait_until"]


class FakeClock:
    """A monotonic clock that only moves when the test says so.

    Pass ``clock=fake_clock`` to a component that takes a time source
    (e.g. :class:`repro.runtime.idle.IdleConnectionReaper`), then call
    :meth:`advance` to step time deterministically.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self._now

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += float(seconds)

    def sleep(self, seconds: float) -> None:
        """Record the sleep and advance instantly — no real waiting."""
        self.sleeps.append(float(seconds))
        self.advance(seconds)


class FakeHandle:
    """In-memory stand-in for a SocketHandle: Communicator unit tests
    inject bytes with :func:`feed` and read replies off ``sent``."""

    def __init__(self):
        self.name = "fake"
        self.out_buffer = bytearray()
        self.sent = bytearray()
        self.last_activity = 0.0
        self.closed = False

    def try_recv(self, max_bytes=65536):
        return None

    def try_send(self):
        n = len(self.out_buffer)
        self.sent.extend(self.out_buffer)
        del self.out_buffer[:]
        return n

    @property
    def wants_write(self):
        return bool(self.out_buffer)

    def fileno(self):
        return -1

    def close(self):
        self.closed = True


def feed(conn, data: bytes) -> None:
    """Inject bytes into a Communicator as if the socket delivered
    them."""
    conn.in_buffer.extend(data)
    conn._pump_requests()


def wait_until(predicate: Callable[[], bool], timeout: float = 10.0,
               interval: float = 0.005,
               message: Optional[str] = None) -> bool:
    """Poll ``predicate`` until true or ``timeout`` elapses.

    Raises ``AssertionError`` on timeout when ``message`` is given;
    otherwise returns False so callers can assert with their own text.
    """
    deadline = time.monotonic() + timeout
    while True:
        if predicate():
            return True
        if time.monotonic() >= deadline:
            if message is not None:
                raise AssertionError(
                    f"condition not met within {timeout:.1f}s: {message}")
            return False
        time.sleep(interval)


class ServerFixture:
    """Own a server's start/stop lifecycle and its client plumbing.

    Works with any object exposing ``start()``, ``stop()`` and ``port``
    — the library ``ReactorServer``/``ShardedReactorServer`` and the
    generated ``Server`` facade alike.  ``stop()`` is exactly-once:
    tests that drain/stop early call :meth:`mark_stopped`.
    """

    def __init__(self, server, host: str = "127.0.0.1",
                 connect_timeout: float = 5.0):
        self.server = server
        self.host = host
        self.connect_timeout = connect_timeout
        self._stopped = False

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "ServerFixture":
        self.server.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def port(self) -> int:
        return self.server.port

    def mark_stopped(self) -> None:
        """The test already stopped/drained the server itself."""
        self._stopped = True

    def stop(self) -> None:
        if not self._stopped:
            self._stopped = True
            self.server.stop()

    # -- client plumbing -------------------------------------------------
    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        timeout = self.connect_timeout if timeout is None else timeout
        s = socket.create_connection((self.host, self.port), timeout=timeout)
        s.settimeout(timeout)
        return s

    def read_line(self, sock: socket.socket) -> bytes:
        """Read until newline or EOF (the tests' framing)."""
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                break
            buf += chunk
        return buf

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        """One connection, one newline-framed request/response."""
        s = self.connect(timeout)
        try:
            s.sendall(payload)
            return self.read_line(s)
        finally:
            s.close()

    def http_get(self, path: str, timeout: float = 5.0) -> bytes:
        """One-shot ``Connection: close`` HTTP GET; b'' if the server
        dropped the connection (e.g. an injected fault)."""
        try:
            s = socket.create_connection((self.host, self.port),
                                         timeout=timeout)
        except OSError:
            return b""
        s.settimeout(timeout)
        data = b""
        try:
            s.sendall(f"GET {path} HTTP/1.1\r\nHost: t\r\n"
                      "Connection: close\r\n\r\n".encode())
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    break
                data += chunk
        except OSError:
            pass
        finally:
            s.close()
        return data

    def http_get_until_ok(self, path: str, attempts: int = 8) -> bytes:
        """Retry around injected faults (deterministic per seed)."""
        for _ in range(attempts):
            response = self.http_get(path)
            if response.startswith(b"HTTP/1.1 200"):
                return response
        raise AssertionError(f"no 200 for {path} in {attempts} attempts")
