"""The harness tested on itself: FakeClock driving real deadline logic
(the O7 idle reaper) without any wall-clock waiting, and wait_until's
timeout/message contract."""

import pytest

from harness import FakeClock, wait_until
from repro.runtime.idle import IdleConnectionReaper


class Conn:
    def __init__(self, last_activity=0.0):
        self.last_activity = last_activity
        self.closed = False


def test_fake_clock_advances_only_on_demand(fake_clock):
    assert fake_clock() == 0.0
    fake_clock.advance(1.5)
    assert fake_clock.monotonic() == 1.5
    fake_clock.sleep(0.25)
    assert fake_clock() == 1.75
    assert fake_clock.sleeps == [0.25]
    with pytest.raises(ValueError):
        fake_clock.advance(-1)


def test_idle_reaper_deadline_logic_under_fake_clock(fake_clock):
    """The reaper's deadline arithmetic, tested in zero real time: a
    connection idles past the limit exactly when the fake clock says
    so — no scan threads, no sleeps, no tolerance windows."""
    reaped = []
    reaper = IdleConnectionReaper(idle_limit=30.0, on_idle=reaped.append,
                                  clock=fake_clock)
    fresh, stale = Conn(last_activity=0.0), Conn(last_activity=0.0)
    reaper.watch(fresh)
    reaper.watch(stale)

    fake_clock.advance(29.0)
    fresh.last_activity = fake_clock()      # fresh keeps talking
    assert reaper.scan() == 0               # 29s idle: under the limit

    fake_clock.advance(1.5)                 # stale is now 30.5s idle
    assert reaper.scan() == 1
    assert reaped == [stale]
    assert reaper.reaped == 1
    assert reaper.watched_count == 1        # fresh is still watched


def test_wait_until_returns_and_raises():
    assert wait_until(lambda: True, timeout=0.1) is True
    assert wait_until(lambda: False, timeout=0.05) is False
    with pytest.raises(AssertionError, match="never happened"):
        wait_until(lambda: False, timeout=0.05, message="never happened")
