"""Tests for the periodic gauge sampler."""

import pytest

from harness import wait_until
from repro.obs import MetricsRegistry, PeriodicSampler


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        PeriodicSampler(MetricsRegistry(), interval=0)


def test_sample_copies_probe_values():
    reg = MetricsRegistry()
    sampler = PeriodicSampler(reg)
    depth = {"n": 3}
    gauge = sampler.add_probe("queue_depth", lambda: depth["n"])
    sampler.sample()
    assert gauge.value == 3.0
    depth["n"] = 7
    sampler.sample()
    assert reg.value("queue_depth") == 7.0


def test_probe_exception_keeps_last_value():
    reg = MetricsRegistry()
    sampler = PeriodicSampler(reg)
    state = {"boom": False}

    def probe():
        if state["boom"]:
            raise RuntimeError("probe died")
        return 5

    sampler.add_probe("g", probe)
    sampler.sample()
    state["boom"] = True
    sampler.sample()                       # must not raise
    assert reg.value("g") == 5.0


def test_none_return_skips_tick():
    reg = MetricsRegistry()
    sampler = PeriodicSampler(reg)
    value = {"v": 9}
    sampler.add_probe("g", lambda: value["v"])
    sampler.sample()
    value["v"] = None
    sampler.sample()
    assert reg.value("g") == 9.0


def test_ticks_counter_increments():
    reg = MetricsRegistry()
    sampler = PeriodicSampler(reg)
    sampler.sample()
    sampler.sample()
    assert reg.value("server_sampler_ticks_total") == 2


def test_thread_mode_samples_until_stopped():
    reg = MetricsRegistry()
    sampler = PeriodicSampler(reg, interval=0.01)
    sampler.add_probe("g", lambda: 1)
    sampler.start()
    sampler.start()                        # idempotent
    wait_until(lambda: reg.value("server_sampler_ticks_total") > 0,
               timeout=2.0, message="sampler thread never ticked")
    sampler.stop()
    assert sampler._thread is None
    ticks = reg.value("server_sampler_ticks_total")
    # negative wait: no tick may arrive after stop
    assert not wait_until(
        lambda: reg.value("server_sampler_ticks_total") != ticks,
        timeout=0.1)
    assert reg.value("g") == 1.0
