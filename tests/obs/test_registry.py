"""Tests for the metrics registry: counters, gauges, histograms and
labeled families."""

import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# -- counter ------------------------------------------------------------------


def test_counter_increments():
    c = Counter()
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_counter_thread_safety():
    c = Counter()

    def worker():
        for _ in range(10_000):
            c.inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 80_000


# -- gauge ---------------------------------------------------------------------


def test_gauge_set_inc_dec():
    g = Gauge()
    g.set(10)
    g.inc(2.5)
    g.dec()
    assert g.value == pytest.approx(11.5)


# -- histogram ------------------------------------------------------------------


def test_histogram_counts_and_sum():
    h = Histogram()
    for v in (0.001, 0.01, 0.1):
        h.observe(v)
    assert h.count == 3
    assert h.sum == pytest.approx(0.111)


def test_histogram_snapshot_buckets_cumulative():
    h = Histogram(buckets=(1.0, 2.0))
    for v in (0.5, 1.5, 5.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 3
    buckets = dict(snap["buckets"])
    assert buckets[1.0] == 1
    assert buckets[2.0] == 2
    assert buckets[float("inf")] == 3


def test_histogram_quantiles_bounded_by_observations():
    h = Histogram()
    for v in (0.002, 0.003, 0.004):
        h.observe(v)
    for q in (0.5, 0.9, 0.99):
        assert 0.002 <= h.quantile(q) <= 0.004


def test_histogram_quantile_empty():
    assert Histogram().quantile(0.5) is None


def test_histogram_overflow_bucket():
    h = Histogram(buckets=(0.1,))
    h.observe(100.0)
    assert h.quantile(0.99) == pytest.approx(100.0)


# -- registry ---------------------------------------------------------------------


def test_registry_creates_and_returns_same_metric():
    reg = MetricsRegistry()
    a = reg.counter("requests_total", "Requests")
    b = reg.counter("requests_total", "Requests")
    assert a is b


def test_registry_rejects_kind_mismatch():
    reg = MetricsRegistry()
    reg.counter("x", "x")
    with pytest.raises(ValueError):
        reg.gauge("x", "x")


def test_registry_labeled_family():
    reg = MetricsRegistry()
    fam = reg.histogram("stage_seconds", "Stage latency", labels=("stage",))
    fam.labels(stage="decode").observe(0.01)
    fam.labels(stage="decode").observe(0.02)
    fam.labels(stage="handle").observe(0.5)
    children = dict((tuple(labels.items()), h) for labels, h in fam.children())
    assert children[(("stage", "decode"),)].count == 2
    assert children[(("stage", "handle"),)].count == 1


def test_registry_labels_validated():
    reg = MetricsRegistry()
    fam = reg.counter("by_code", "By code", labels=("code",))
    with pytest.raises(ValueError):
        fam.labels(status="200")


def test_registry_value_helper():
    reg = MetricsRegistry()
    reg.counter("hits_total", "Hits").inc(7)
    assert reg.value("hits_total") == 7


def test_registry_collect_registration_order():
    reg = MetricsRegistry()
    reg.counter("zzz", "z")
    reg.gauge("aaa", "a")
    assert [f.name for f in reg.collect()] == ["zzz", "aaa"]


def test_default_buckets_strictly_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


# -- null objects ----------------------------------------------------------------


def test_null_registry_and_metric_inert():
    c = NULL_REGISTRY.counter("anything", "help")
    c.inc(100)
    assert c.value == 0
    NULL_METRIC.observe(1.0)
    NULL_METRIC.set(5)
    assert NULL_METRIC.labels(stage="x") is NULL_METRIC
    assert NULL_REGISTRY.collect() == []
