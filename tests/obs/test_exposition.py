"""Exposition tests: Prometheus golden output and the mod_status page."""

from repro.obs import (
    MetricsRegistry,
    render_prometheus,
    render_status_auto,
    render_status_html,
    status_fields,
)


def make_registry():
    reg = MetricsRegistry()
    reg.counter("server_requests_total", "Requests handled").inc(10)
    reg.counter("server_connections_accepted_total",
                "Connections accepted").inc(4)
    reg.gauge("server_open_connections", "Open connections").set(2)
    reg.counter("server_bytes_sent_total", "Bytes sent").inc(2048)
    hist = reg.histogram("rt_seconds", "Latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    return reg


# -- Prometheus text format ---------------------------------------------------


def test_prometheus_golden():
    assert render_prometheus(make_registry()) == (
        "# HELP server_requests_total Requests handled\n"
        "# TYPE server_requests_total counter\n"
        "server_requests_total 10\n"
        "# HELP server_connections_accepted_total Connections accepted\n"
        "# TYPE server_connections_accepted_total counter\n"
        "server_connections_accepted_total 4\n"
        "# HELP server_open_connections Open connections\n"
        "# TYPE server_open_connections gauge\n"
        "server_open_connections 2\n"
        "# HELP server_bytes_sent_total Bytes sent\n"
        "# TYPE server_bytes_sent_total counter\n"
        "server_bytes_sent_total 2048\n"
        "# HELP rt_seconds Latency\n"
        "# TYPE rt_seconds histogram\n"
        'rt_seconds_bucket{le="0.1"} 1\n'
        'rt_seconds_bucket{le="1"} 2\n'
        'rt_seconds_bucket{le="+Inf"} 2\n'
        "rt_seconds_sum 0.55\n"
        "rt_seconds_count 2\n"
    )


def test_prometheus_labeled_histogram():
    reg = MetricsRegistry()
    fam = reg.histogram("stage_seconds", "Stage latency",
                        labels=("stage",), buckets=(0.1,))
    fam.labels(stage="decode").observe(0.05)
    text = render_prometheus(reg)
    assert 'stage_seconds_bucket{stage="decode",le="0.1"} 1' in text
    assert 'stage_seconds_bucket{stage="decode",le="+Inf"} 1' in text
    assert 'stage_seconds_count{stage="decode"} 1' in text


def test_prometheus_empty_registry():
    assert render_prometheus(MetricsRegistry()) == "\n"


# -- mod_status fields --------------------------------------------------------


def test_status_fields_apache_block_first():
    fields = status_fields(make_registry(), uptime=10.0)
    keys = [k for k, _ in fields]
    assert keys[:5] == ["Uptime", "Total Accesses", "Total Connections",
                        "BusyWorkers", "Total kBytes"]
    by_key = dict(fields)
    assert by_key["Uptime"] == "10.000"
    assert by_key["Total Accesses"] == "10"
    assert by_key["Total Connections"] == "4"
    assert by_key["BusyWorkers"] == "2"
    assert by_key["Total kBytes"] == "2"          # 2048 bytes
    assert by_key["ReqPerSec"] == "1.000"
    assert by_key["BytesPerSec"] == "204.8"


def test_status_fields_raw_metrics_and_quantiles():
    by_key = dict(status_fields(make_registry(), uptime=10.0))
    assert by_key["server_requests_total"] == "10"
    assert by_key["rt_seconds-count"] == "2"
    for q in ("p50", "p90", "p99"):
        assert 0.05 <= float(by_key[f"rt_seconds-{q}"]) <= 0.5


def test_status_fields_without_uptime():
    keys = [k for k, _ in status_fields(make_registry())]
    assert "Uptime" not in keys
    assert "ReqPerSec" not in keys
    assert "Total Accesses" in keys


def test_render_status_auto_format():
    text = render_status_auto([("Uptime", "10.0"), ("Total Accesses", "10")])
    assert text == "Uptime: 10.0\nTotal Accesses: 10\n"


def test_render_status_html():
    html = render_status_html([("Total Accesses", "10"), ("a<b", "x&y")])
    assert html.startswith("<!DOCTYPE html>")
    assert "<tr><td>Total Accesses</td><td>10</td></tr>" in html
    assert "a&lt;b" in html and "x&amp;y" in html      # escaped
    assert "N-Server Status" in html
