"""Tests for request-lifecycle spans (fake clock throughout)."""

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_SPANS,
    MetricsRegistry,
    SpanRecorder,
)


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def recorder():
    return SpanRecorder(MetricsRegistry(), clock=FakeClock())


def stage_hist(recorder, stage):
    family = recorder.registry.get("server_request_stage_seconds")
    for labels, hist in family.children():
        if labels["stage"] == stage:
            return hist
    raise AssertionError(f"no samples for stage {stage!r}")


# -- basic lifecycle ----------------------------------------------------------


def test_span_records_total_duration(recorder):
    clock = recorder.clock
    span = recorder.start("request", detail="peer:1")
    clock.advance(0.25)
    span.finish()
    assert span.finished
    assert span.duration == pytest.approx(0.25)
    total = recorder.registry.get("server_request_seconds").labels()
    assert total.count == 1
    assert total.sum == pytest.approx(0.25)


def test_stage_context_manager_times_stage(recorder):
    clock = recorder.clock
    span = recorder.start()
    with span.stage("decode"):
        clock.advance(0.010)
    with span.stage("handle"):
        clock.advance(0.100)
    span.finish()
    assert [path for path, _, _ in span.stages] == ["decode", "handle"]
    assert stage_hist(recorder, "decode").sum == pytest.approx(0.010)
    assert stage_hist(recorder, "handle").sum == pytest.approx(0.100)


def test_nested_stages_get_dotted_paths(recorder):
    clock = recorder.clock
    span = recorder.start()
    span.stage_begin("handle")
    clock.advance(0.01)
    span.stage_begin("cache")
    clock.advance(0.02)
    span.stage_end()                       # ends "cache"
    clock.advance(0.03)
    span.stage_end()                       # ends "handle"
    span.finish()
    paths = {path: end - start for path, start, end in span.stages}
    assert paths["handle.cache"] == pytest.approx(0.02)
    assert paths["handle"] == pytest.approx(0.06)


def test_stage_end_without_open_stage_is_noop(recorder):
    span = recorder.start()
    span.stage_end()
    span.finish()
    assert span.stages == []


def test_finish_closes_open_stages(recorder):
    clock = recorder.clock
    span = recorder.start()
    span.stage_begin("handle")
    clock.advance(0.5)
    span.finish()                          # handle still open
    assert [path for path, _, _ in span.stages] == ["handle"]
    assert stage_hist(recorder, "handle").sum == pytest.approx(0.5)


def test_finish_is_idempotent(recorder):
    clock = recorder.clock
    span = recorder.start()
    clock.advance(0.1)
    span.finish()
    clock.advance(99.0)
    span.finish()                          # second call must not re-record
    total = recorder.registry.get("server_request_seconds").labels()
    assert total.count == 1
    assert span.duration == pytest.approx(0.1)


# -- out-of-span observations -------------------------------------------------


def test_observe_records_socket_stages(recorder):
    recorder.observe("read", 0.002)
    recorder.observe("read", 0.004)
    recorder.observe("send", 0.001)
    assert stage_hist(recorder, "read").count == 2
    assert stage_hist(recorder, "send").count == 1


def test_stage_quantiles_shape(recorder):
    for _ in range(10):
        recorder.observe("read", 0.005)
    q = recorder.stage_quantiles()
    assert set(q) == {"read"}
    assert set(q["read"]) == {0.50, 0.90, 0.99}
    assert q["read"][0.50] == pytest.approx(0.005)


# -- tracer mirroring ---------------------------------------------------------


class FakeTracer:
    def __init__(self):
        self.records = []

    def trace(self, category, detail):
        self.records.append((category, detail))


def test_span_mirrored_into_tracer():
    tracer = FakeTracer()
    clock = FakeClock()
    recorder = SpanRecorder(MetricsRegistry(), tracer=tracer, clock=clock)
    span = recorder.start("request", detail="127.0.0.1:999")
    with span.stage("decode"):
        clock.advance(0.01)
    clock.advance(0.02)
    span.finish()
    assert len(tracer.records) == 1
    category, detail = tracer.records[0]
    assert category == "span"
    assert "127.0.0.1:999" in detail
    assert "total=0.030000" in detail
    assert "decode=0.010000" in detail


def test_no_tracer_no_mirroring(recorder):
    span = recorder.start()
    span.finish()                          # tracer is None: must not raise


# -- null objects -------------------------------------------------------------


def test_null_recorder_hands_out_null_span():
    span = NULL_SPANS.start("request", detail="x")
    assert span is NULL_SPAN
    with span.stage("decode"):
        pass
    span.stage_begin("handle")
    span.stage_end()
    span.finish()
    assert span.finished
    assert span.duration is None
    assert span.stages == []
    NULL_SPANS.observe("read", 1.0)
    assert NULL_SPANS.stage_quantiles() == {}
    assert not NULL_SPANS.enabled
