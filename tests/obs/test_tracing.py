"""Trace ids, span exporters, the trace report, and Prometheus
exemplars — the O11=Yes half of the tracing story (the flight recorder
tests cover the always-on half)."""

import threading

import pytest

from repro.obs import (
    JsonlExporter,
    MetricsRegistry,
    NullExporter,
    RingExporter,
    SpanRecorder,
    format_trace_id,
    next_trace_id,
    read_jsonl,
    render_prometheus,
    render_trace_report,
)


# -- trace ids -------------------------------------------------------------

def test_trace_ids_are_monotonic_and_never_zero():
    a, b, c = next_trace_id(), next_trace_id(), next_trace_id()
    assert 0 < a < b < c


def test_trace_ids_unique_across_threads():
    got = []
    def take():
        got.extend(next_trace_id() for _ in range(200))
    threads = [threading.Thread(target=take) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(got)) == len(got)


def test_format_trace_id_is_sixteen_hex_digits():
    assert format_trace_id(0x2A) == "000000000000002a"
    assert len(format_trace_id(2 ** 64 - 1)) == 16


# -- exporters -------------------------------------------------------------

def span_record(trace_id, start, name="request"):
    return {"trace_id": trace_id, "parent_id": 0, "name": name,
            "detail": "peer", "start": start, "end": start + 0.5,
            "total": 0.5,
            "stages": [{"stage": "decode", "seconds": 0.1},
                       {"stage": "handle", "seconds": 0.4}]}


def test_ring_exporter_keeps_the_most_recent_records():
    exporter = RingExporter(capacity=2)
    for i in range(4):
        exporter.export(span_record(i, float(i)))
    assert [r["trace_id"] for r in exporter.records()] == [2, 3]
    exporter.records()[0]["trace_id"] = 99        # copies out...
    record = span_record(5, 5.0)
    exporter.export(record)
    record["trace_id"] = 99                       # ...and copies in
    assert [r["trace_id"] for r in exporter.records()] == [3, 5]
    exporter.clear()
    assert exporter.records() == []


def test_ring_exporter_capacity_below_one_is_rejected():
    with pytest.raises(ValueError):
        RingExporter(capacity=0)


def test_jsonl_exporter_round_trips_and_closes_idempotently(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    exporter = JsonlExporter(path)
    exporter.export(span_record(1, 0.0))
    exporter.export(span_record(2, 1.0))
    exporter.flush()
    assert [r["trace_id"] for r in read_jsonl(path)] == [1, 2]
    exporter.close()
    exporter.close()                        # idempotent
    exporter.export(span_record(3, 2.0))    # no-op after close
    assert len(read_jsonl(path)) == 2
    # append mode continues an existing file instead of truncating it
    appender = JsonlExporter(path, append=True)
    appender.export(span_record(3, 2.0))
    appender.close()
    assert [r["trace_id"] for r in read_jsonl(path)] == [1, 2, 3]


def test_null_exporter_is_inert():
    exporter = NullExporter()
    exporter.export(span_record(1, 0.0))
    assert exporter.records() == []
    exporter.flush()
    exporter.close()


# -- the trace report ------------------------------------------------------

def test_render_trace_report_orders_by_start_time():
    report = render_trace_report([span_record(2, 5.0), span_record(1, 1.0)])
    lines = report.splitlines()
    assert lines[0] == "Traces: 2"
    assert lines[1].startswith(f"trace={format_trace_id(1)} request peer")
    assert lines[2].startswith(f"trace={format_trace_id(2)} request peer")
    assert "total=0.500000" in lines[1]
    assert "decode=0.100000" in lines[1]
    assert "handle=0.400000" in lines[1]


def test_render_trace_report_sharded_header():
    assert render_trace_report([], sharded=True) \
        == "Traces: 0 (all shards)\n"


# -- exemplars -------------------------------------------------------------

def test_traced_spans_leave_exemplars_in_the_exposition():
    registry = MetricsRegistry()
    clock = iter(i * 0.001 for i in range(100))
    spans = SpanRecorder(registry, clock=lambda: next(clock),
                         exporter=RingExporter())
    span = spans.start("request", "peer", trace_id=0x2A)
    with span.stage("decode"):
        pass
    span.finish()

    exemplars = spans.exemplars()
    value, trace_id = exemplars["server_request_seconds", ()]
    assert trace_id == 0x2A and value > 0
    assert ("server_request_stage_seconds",
            (("stage", "decode"),)) in exemplars

    text = render_prometheus(registry, exemplars=exemplars)
    tagged = [line for line in text.splitlines()
              if '# {trace_id="000000000000002a"}' in line]
    # one exemplar per histogram series, on the first containing bucket
    assert len(tagged) == 2
    assert all("_bucket" in line for line in tagged)


def test_untraced_spans_leave_no_exemplars():
    registry = MetricsRegistry()
    spans = SpanRecorder(registry, exporter=RingExporter())
    span = spans.start("request")
    with span.stage("decode"):
        pass
    span.finish()
    assert spans.exemplars() == {}
    assert "trace_id" not in render_prometheus(
        registry, exemplars=spans.exemplars())
