"""The always-on flight recorder: ring semantics, dump round-trips,
per-request path reconstruction, and the SIGUSR2 dump-everything hook."""

import os
import signal

import pytest

from repro.obs.flight import (
    DETAIL_LIMIT,
    FlightEvent,
    FlightRecorder,
    dump_all,
    install_signal_dump,
    parse_dump,
    reconstruct_path,
)


def make_recorder(**kwargs):
    """A recorder with a deterministic clock (0.0, 1.0, 2.0, ...)."""
    ticks = iter(range(10_000))
    kwargs.setdefault("clock", lambda: float(next(ticks)))
    return FlightRecorder(**kwargs)


# -- ring semantics --------------------------------------------------------

def test_record_returns_timestamp_and_buffers_event():
    rec = make_recorder(capacity=8)
    ts = rec.record("accept", "127.0.0.1:1234", trace_id=7)
    assert ts == 0.0
    (event,) = rec.events()
    assert event == FlightEvent(timestamp=0.0, trace_id=7,
                                category="accept", detail="127.0.0.1:1234")


def test_capacity_bounds_the_ring_oldest_first_out():
    rec = make_recorder(capacity=4)
    for i in range(6):
        rec.record("tick", str(i))
    assert len(rec) == 4
    assert [e.detail for e in rec.events()] == ["2", "3", "4", "5"]


def test_capacity_below_one_is_rejected():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_detail_payload_is_capped():
    rec = make_recorder()
    rec.record("big", "x" * (DETAIL_LIMIT + 100))
    (event,) = rec.events()
    assert len(event.detail) == DETAIL_LIMIT


def test_category_and_trace_filters():
    rec = make_recorder()
    rec.record("accept", "a", trace_id=1)
    rec.record("dispatch", "b", trace_id=1)
    rec.record("accept", "c", trace_id=2)
    assert [e.detail for e in rec.events(category="accept")] == ["a", "c"]
    assert [e.detail for e in rec.events(trace_id=1)] == ["a", "b"]
    assert [e.detail for e in rec.events(category="accept", trace_id=2)] \
        == ["c"]


def test_clear_drops_events_but_keeps_categories():
    rec = make_recorder()
    rec.record("accept", "a")
    rec.clear()
    assert len(rec) == 0
    rec.record("accept", "b")
    assert [e.category for e in rec.events()] == ["accept"]


# -- dump / parse round-trips ----------------------------------------------

def test_snapshot_round_trips_through_parse_dump(tmp_path):
    rec = make_recorder(name="unit", dump_dir=str(tmp_path))
    rec.record("accept", "peer", trace_id=0x2A)
    rec.record("fault", "recv short-read", trace_id=0x2A)
    path = rec.snapshot("test")
    assert os.path.dirname(path) == str(tmp_path)
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    assert text.startswith("# flight recorder=unit reason=test events=2\n")
    assert parse_dump(text) == rec.events()


def test_snapshot_directory_argument_beats_dump_dir(tmp_path):
    pinned = tmp_path / "pinned"
    override = tmp_path / "override"
    pinned.mkdir()
    override.mkdir()
    rec = make_recorder(name="unit", dump_dir=str(pinned))
    rec.record("accept")
    path = rec.snapshot("test", directory=str(override))
    assert os.path.dirname(path) == str(override)
    assert os.path.exists(path)


def test_snapshot_env_var_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
    rec = make_recorder(name="envdir")
    rec.record("accept")
    path = rec.snapshot("test")
    assert os.path.dirname(path) == str(tmp_path)
    assert os.path.exists(path)


def test_failed_snapshot_never_raises(tmp_path):
    rec = make_recorder(name="doomed",
                        dump_dir=str(tmp_path / "missing" / "deeper"))
    rec.record("accept")
    path = rec.snapshot("crash")   # the directory does not exist
    assert not os.path.exists(path)


def test_parse_dump_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_dump("0.000001 0000000000000001 no-category-bracket")


def test_parse_dump_skips_comments_and_blanks():
    assert parse_dump("# header\n\n") == []


# -- reconstruction --------------------------------------------------------

def test_reconstruct_path_merges_recorders_chronologically():
    clock = iter(range(100))
    tick = lambda: float(next(clock))  # noqa: E731 - shared test clock
    accept_plane = FlightRecorder(name="accept-plane", clock=tick)
    shard = FlightRecorder(name="shard-0", clock=tick)
    accept_plane.record("accept", "peer", trace_id=9)
    shard.record("adopt", "shard=0", trace_id=9)
    shard.record("dispatch", "", trace_id=9)
    shard.record("dispatch", "", trace_id=8)       # another request
    shard.record("write-complete", "", trace_id=9)
    merged = shard.events() + accept_plane.events()   # any order in
    path = reconstruct_path(9, merged)
    assert [e.category for e in path] == [
        "accept", "adopt", "dispatch", "write-complete"]
    assert [e.timestamp for e in path] == sorted(e.timestamp for e in path)


def test_dump_all_snapshots_every_live_recorder(tmp_path):
    rec = make_recorder(name="dump-all-unit")
    rec.record("accept")
    paths = dump_all("test", directory=str(tmp_path))
    mine = [p for p in paths if "dump-all-unit" in os.path.basename(p)]
    assert len(mine) == 1
    assert parse_dump(open(mine[0], encoding="utf-8").read()) \
        == rec.events()


def test_sigusr2_dumps_to_the_env_directory(tmp_path, monkeypatch):
    if not hasattr(signal, "SIGUSR2"):
        pytest.skip("platform has no SIGUSR2")
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
    rec = make_recorder(name="sig-unit")
    rec.record("accept", "sig test")
    if not install_signal_dump():
        pytest.skip("cannot install signal handlers here")
    assert install_signal_dump()   # idempotent
    os.kill(os.getpid(), signal.SIGUSR2)
    dumps = [p for p in os.listdir(tmp_path)
             if p.startswith("flight-sig-unit-sigusr2-")]
    assert len(dumps) == 1
