"""Integration tests: COPS-HTTP on its generated framework, real sockets."""

import os
import socket
import time

import pytest

from repro.servers import build_cops_http


@pytest.fixture(scope="module")
def site(tmp_path_factory):
    root = tmp_path_factory.mktemp("site")
    (root / "index.html").write_bytes(b"<html>front page</html>")
    (root / "big.bin").write_bytes(os.urandom(200_000))
    (root / "style.css").write_bytes(b"body { color: red }")
    sub = root / "docs"
    sub.mkdir()
    (sub / "page.html").write_bytes(b"<html>docs</html>")
    return root


@pytest.fixture(scope="module")
def server(site):
    server, fw, report = build_cops_http(str(site))
    server.start()
    yield server
    server.stop()


def http_get(port, request: bytes, timeout=5.0) -> bytes:
    s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    s.settimeout(timeout)
    try:
        s.sendall(request)
        buf = b""
        while True:
            try:
                chunk = s.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            buf += chunk
            if _complete(buf):
                break
        return buf
    finally:
        s.close()


def _complete(buf: bytes) -> bool:
    head_end = buf.find(b"\r\n\r\n")
    if head_end == -1:
        return False
    head = buf[:head_end].decode("latin-1", "replace")
    for line in head.split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":")[1])
            return len(buf) >= head_end + 4 + length
    return False


def test_get_index(server):
    resp = http_get(server.port,
                    b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 200 OK")
    assert b"front page" in resp
    assert b"Content-Type: text/html" in resp


def test_root_maps_to_index(server):
    resp = http_get(server.port, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
    assert b"front page" in resp


def test_subdirectory(server):
    resp = http_get(server.port,
                    b"GET /docs/page.html HTTP/1.1\r\nHost: x\r\n\r\n")
    assert b"docs" in resp


def test_content_type_css(server):
    resp = http_get(server.port,
                    b"GET /style.css HTTP/1.1\r\nHost: x\r\n\r\n")
    assert b"Content-Type: text/css" in resp


def test_404(server):
    resp = http_get(server.port,
                    b"GET /nope.html HTTP/1.1\r\nHost: x\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 404")


def test_head_has_no_body(server):
    resp = http_get(server.port,
                    b"HEAD /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    head, _, body = resp.partition(b"\r\n\r\n")
    assert b"200 OK" in head
    assert b"Content-Length: 23" in head
    assert body == b""


def test_unsupported_method_501(server):
    resp = http_get(server.port,
                    b"POST /index.html HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 0\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 501")


def test_missing_host_400(server):
    resp = http_get(server.port, b"GET / HTTP/1.1\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 400")


def test_garbage_request_answered_with_error(server):
    resp = http_get(server.port, b"NOT AN HTTP REQUEST\r\n\r\n")
    assert resp[:12].startswith(b"HTTP/1.1 ")


def test_persistent_connection_serves_multiple_requests(server):
    s = socket.create_connection(("127.0.0.1", server.port), timeout=5)
    s.settimeout(5)
    try:
        for _ in range(5):  # the paper's 5 requests per connection
            s.sendall(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
            buf = b""
            while not _complete(buf):
                buf += s.recv(65536)
            assert b"200 OK" in buf
    finally:
        s.close()


def test_http10_closes_connection(server):
    s = socket.create_connection(("127.0.0.1", server.port), timeout=5)
    s.settimeout(5)
    try:
        s.sendall(b"GET /index.html HTTP/1.0\r\n\r\n")
        buf = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
        assert b"200 OK" in buf  # and the server closed (recv returned b"")
    finally:
        s.close()


def test_large_file_integrity(server, site):
    resp = http_get(server.port,
                    b"GET /big.bin HTTP/1.1\r\nHost: x\r\n\r\n")
    _, _, body = resp.partition(b"\r\n\r\n")
    assert body == (site / "big.bin").read_bytes()


def test_path_traversal_blocked(server):
    resp = http_get(server.port,
                    b"GET /../../../etc/passwd HTTP/1.1\r\nHost: x\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 404")


def test_cache_hits_on_repeat(server):
    before = server.reactor.cache.stats.hits
    http_get(server.port, b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    http_get(server.port, b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    assert server.reactor.cache.stats.hits > before


def test_generated_framework_records_options(server):
    # The framework package remembers what generated it.
    import sys

    fw = sys.modules[type(server).__module__].__name__.split(".")[0]
    mod = sys.modules[fw]
    assert mod.GENERATED_OPTIONS["O6"] == "LRU"
    assert mod.GENERATED_OPTIONS["O4"] == "Asynchronous"


def test_concurrent_clients(server):
    import threading

    results = {}

    def client(i):
        results[i] = http_get(
            server.port, b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")

    threads = [threading.Thread(target=client, args=(i,)) for i in range(10)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert all(b"200 OK" in results[i] for i in range(10))
