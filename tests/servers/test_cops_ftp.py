"""Integration tests: COPS-FTP on its generated framework, driven by the
standard library's ftplib client over real sockets."""

import ftplib
import io

import pytest

from harness import wait_until
from repro.ftp import User, UserRegistry, VirtualFS
from repro.servers import build_cops_ftp


@pytest.fixture(scope="module")
def setup():
    fs = VirtualFS()
    fs.makedirs("/pub/docs")
    fs.write_file("/pub/hello.txt", b"hello ftp world")
    fs.write_file("/pub/docs/deep.txt", b"nested")
    fs.makedirs("/home/alice")
    users = UserRegistry()
    users.add(User(name="alice", password="pw", home="/home/alice"))
    server, fw, report = build_cops_ftp(fs=fs, users=users)
    server.start()
    yield server, fs
    server.stop()


def connect(server, user="anonymous", password="guest@"):
    ftp = ftplib.FTP()
    ftp.connect("127.0.0.1", server.port, timeout=5)
    ftp.login(user, password)
    return ftp


def test_welcome_banner(setup):
    server, _ = setup
    ftp = ftplib.FTP()
    ftp.connect("127.0.0.1", server.port, timeout=5)
    assert ftp.getwelcome().startswith("220")
    ftp.close()


def test_anonymous_login_lands_in_pub(setup):
    server, _ = setup
    ftp = connect(server)
    assert ftp.pwd() == "/pub"
    ftp.quit()


def test_bad_password_rejected(setup):
    server, _ = setup
    ftp = ftplib.FTP()
    ftp.connect("127.0.0.1", server.port, timeout=5)
    with pytest.raises(ftplib.error_perm):
        ftp.login("alice", "wrong")
    ftp.close()


def test_nlst_and_cwd(setup):
    server, _ = setup
    ftp = connect(server)
    assert ftp.nlst() == ["docs", "hello.txt"]
    ftp.cwd("docs")
    assert ftp.pwd() == "/pub/docs"
    assert ftp.nlst() == ["deep.txt"]
    ftp.quit()


def test_list_long_format(setup):
    server, _ = setup
    ftp = connect(server)
    lines = []
    ftp.retrlines("LIST", lines.append)
    assert any("hello.txt" in line and line.startswith("-rw-")
               for line in lines)
    ftp.quit()


def test_retr_file(setup):
    server, _ = setup
    ftp = connect(server)
    buf = io.BytesIO()
    ftp.retrbinary("RETR hello.txt", buf.write)
    assert buf.getvalue() == b"hello ftp world"
    ftp.quit()


def test_retr_missing_file(setup):
    server, _ = setup
    ftp = connect(server)
    with pytest.raises(ftplib.error_perm):
        ftp.retrbinary("RETR ghost.txt", lambda b: None)
    ftp.quit()


def test_size_command(setup):
    server, _ = setup
    ftp = connect(server)
    ftp.voidcmd("TYPE I")
    assert ftp.size("hello.txt") == 15
    ftp.quit()


def test_stor_and_dele_as_alice(setup):
    server, fs = setup
    ftp = connect(server, "alice", "pw")
    ftp.storbinary("STOR data.bin", io.BytesIO(b"\x01\x02\x03"))
    wait_until(lambda: fs.exists("/home/alice/data.bin"),
               message="uploaded file never appeared in the VFS")
    assert fs.read_file("/home/alice/data.bin") == b"\x01\x02\x03"
    ftp.delete("data.bin")
    assert not fs.exists("/home/alice/data.bin")
    ftp.quit()


def test_anonymous_cannot_write(setup):
    server, _ = setup
    ftp = connect(server)
    with pytest.raises(ftplib.error_perm):
        ftp.storbinary("STOR evil.bin", io.BytesIO(b"x"))
    ftp.quit()


def test_mkd_rmd_rename(setup):
    server, fs = setup
    ftp = connect(server, "alice", "pw")
    ftp.mkd("work")
    assert fs.is_dir("/home/alice/work")
    ftp.rename("work", "play")
    assert fs.is_dir("/home/alice/play")
    ftp.rmd("play")
    assert not fs.exists("/home/alice/play")
    ftp.quit()


def test_multiple_sessions_concurrently(setup):
    server, _ = setup
    clients = [connect(server) for _ in range(4)]
    for ftp in clients:
        assert ftp.pwd() == "/pub"
    for ftp in clients:
        ftp.quit()


def test_roundtrip_upload_download(setup):
    server, fs = setup
    payload = bytes(range(256)) * 100
    ftp = connect(server, "alice", "pw")
    ftp.storbinary("STOR blob", io.BytesIO(payload))
    wait_until(lambda: fs.exists("/home/alice/blob")
               and fs.read_file("/home/alice/blob") == payload,
               message="upload never fully landed in the VFS")
    buf = io.BytesIO()
    ftp.retrbinary("RETR blob", buf.write)
    assert buf.getvalue() == payload
    ftp.delete("blob")
    ftp.quit()
