"""Integration tests for the trivial Time server example."""

import socket

import pytest

from repro.servers import TIME_SERVER_OPTIONS, build_time_server


@pytest.fixture(scope="module")
def server():
    server, fw, report = build_time_server()
    server.start()
    yield server
    server.stop()


def ask(port) -> bytes:
    s = socket.create_connection(("127.0.0.1", port), timeout=3)
    s.settimeout(3)
    try:
        s.sendall(b"time please\n")
        buf = b""
        while not buf.endswith(b"\n"):
            buf += s.recv(1024)
        return buf
    finally:
        s.close()


def test_returns_a_timestamp(server):
    reply = ask(server.port)
    # "YYYY-MM-DD HH:MM:SS\n"
    assert len(reply.strip()) == 19
    assert reply[4:5] == b"-" and reply[13:14] == b":"


def test_three_step_pipeline(server):
    assert type(server).pipeline == ("read request", "handle request",
                                     "send reply")


def test_no_codec_classes_generated():
    import sys

    mod = sys.modules["time_server_fw.handlers"]
    assert not hasattr(mod, "DecodeRequestEventHandler")
    assert not hasattr(mod, "EncodeReplyEventHandler")


def test_options_record(server):
    import sys

    assert sys.modules["time_server_fw"].GENERATED_OPTIONS["O3"] is False
    assert TIME_SERVER_OPTIONS["O4"] == "Synchronous"


def test_idle_client_is_dropped():
    server, fw, report = build_time_server(
        package="time_server_idle_fw", idle_limit=0.3,
        idle_scan_interval=0.1)
    server.start()
    try:
        s = socket.create_connection(("127.0.0.1", server.port), timeout=3)
        s.settimeout(3)
        assert s.recv(1024) == b""  # reaped without us sending anything
        s.close()
    finally:
        server.stop()
