"""Integration tests: COPS-Mail on its generated framework, driven by
the standard library's smtplib over real sockets."""

import smtplib

import pytest

from harness import wait_until
from repro.servers import build_mail_server


@pytest.fixture(scope="module")
def setup():
    server, store, fw = build_mail_server()
    server.start()
    yield server, store
    server.stop()


def wait_for(predicate, timeout=3.0):
    return wait_until(predicate, timeout=timeout)


def test_banner_and_ehlo(setup):
    server, _ = setup
    client = smtplib.SMTP("127.0.0.1", server.port, timeout=5)
    code, msg = client.ehlo("tester")
    assert code == 250
    assert b"SIZE" in msg
    client.quit()


def test_send_single_message(setup):
    server, store = setup
    client = smtplib.SMTP("127.0.0.1", server.port, timeout=5)
    client.sendmail("from@a.test", ["to@b.test"],
                    "Subject: t\r\n\r\nbody text\r\n")
    client.quit()
    assert wait_for(lambda: store.messages_for("to@b.test"))
    msg = store.messages_for("to@b.test")[-1]
    assert msg.sender == "from@a.test"
    assert b"body text" in msg.body


def test_multiple_recipients(setup):
    server, store = setup
    client = smtplib.SMTP("127.0.0.1", server.port, timeout=5)
    client.sendmail("s@x.test", ["r1@x.test", "r2@x.test"], "m\r\n")
    client.quit()
    assert wait_for(lambda: store.messages_for("r1@x.test"))
    assert wait_for(lambda: store.messages_for("r2@x.test"))


def test_two_transactions_one_connection(setup):
    server, store = setup
    client = smtplib.SMTP("127.0.0.1", server.port, timeout=5)
    client.sendmail("s@x.test", ["first@y.test"], "one\r\n")
    client.sendmail("s@x.test", ["second@y.test"], "two\r\n")
    client.quit()
    assert wait_for(lambda: store.messages_for("first@y.test"))
    assert wait_for(lambda: store.messages_for("second@y.test"))


def test_recipient_refused_without_mail(setup):
    server, _ = setup
    client = smtplib.SMTP("127.0.0.1", server.port, timeout=5)
    client.ehlo("tester")
    code, _ = client.docmd("RCPT", "TO:<x@y.test>")
    assert code == 503
    client.quit()


def test_message_with_leading_dots(setup):
    server, store = setup
    client = smtplib.SMTP("127.0.0.1", server.port, timeout=5)
    client.sendmail("s@x.test", ["dots@y.test"],
                    "line\r\n.starts with dot\r\n")
    client.quit()
    assert wait_for(lambda: store.messages_for("dots@y.test"))
    body = store.messages_for("dots@y.test")[-1].body
    assert b".starts with dot" in body
    assert b"..starts" not in body


def test_concurrent_smtp_clients(setup):
    import threading

    server, store = setup
    errors = []

    def send(i):
        try:
            c = smtplib.SMTP("127.0.0.1", server.port, timeout=5)
            c.sendmail("s@x.test", [f"conc{i}@z.test"], f"msg {i}\r\n")
            c.quit()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=send, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not errors
    for i in range(6):
        assert wait_for(lambda i=i: store.messages_for(f"conc{i}@z.test"))


def test_logging_enabled_by_o12(setup):
    server, _ = setup
    # MAIL_SERVER_OPTIONS sets O12=True: the generated reactor has a log.
    assert hasattr(server.reactor, "log")
    assert server.reactor.log.lines  # accepted-connection lines
