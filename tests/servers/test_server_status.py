"""Integration tests: the /server-status surface over a real socket.

An O11=Yes COPS-HTTP build answers with live metrics (Apache
``mod_status`` shapes in ``?auto`` mode, HTML otherwise); the default
O11=No build — whose generated framework contains no observability code
at all — answers 404 from the very same hook code.
"""

import socket

import pytest

from repro.co2p3s.nserver import COPS_HTTP_OBSERVABILITY_OPTIONS
from repro.servers import build_cops_http


@pytest.fixture(scope="module")
def site(tmp_path_factory):
    root = tmp_path_factory.mktemp("site")
    (root / "index.html").write_bytes(b"<html>front page</html>")
    return root


@pytest.fixture(scope="module")
def server(site, tmp_path_factory):
    server, fw, report = build_cops_http(
        str(site), options=COPS_HTTP_OBSERVABILITY_OPTIONS,
        dest=str(tmp_path_factory.mktemp("fw_o11")), package="o11_fw")
    server.start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def plain_server(site, tmp_path_factory):
    server, fw, report = build_cops_http(
        str(site), dest=str(tmp_path_factory.mktemp("fw_plain")),
        package="plain_fw")
    server.start()
    yield server
    server.stop()


def http_get(port, request: bytes, timeout=5.0) -> bytes:
    s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    s.settimeout(timeout)
    try:
        s.sendall(request)
        buf = b""
        while True:
            try:
                chunk = s.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            buf += chunk
            if _complete(buf):
                break
        return buf
    finally:
        s.close()


def _complete(buf: bytes) -> bool:
    head_end = buf.find(b"\r\n\r\n")
    if head_end == -1:
        return False
    head = buf[:head_end].decode("latin-1", "replace")
    for line in head.split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":")[1])
            return len(buf) >= head_end + 4 + length
    return False


def fields_of(body: bytes) -> dict:
    out = {}
    for line in body.decode().splitlines():
        key, _, value = line.partition(": ")
        out[key] = value
    return out


def test_status_auto_reports_live_counters(server):
    # Generate some traffic first so the counters are non-zero.
    for _ in range(3):
        resp = http_get(server.port,
                        b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
        assert b"200 OK" in resp
    resp = http_get(server.port,
                    b"GET /server-status?auto HTTP/1.1\r\nHost: x\r\n\r\n")
    head, _, body = resp.partition(b"\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 200 OK")
    assert b"Content-Type: text/plain" in head
    fields = fields_of(body)
    assert float(fields["Uptime"]) > 0
    assert int(fields["Total Accesses"]) >= 3
    assert int(fields["Total Connections"]) >= 3
    assert int(fields["server_bytes_sent_total"]) > 0
    # Sampled gauges: queue depth, pool size, cache hit rate.
    assert "server_queue_depth" in fields
    assert "server_pool_threads" in fields
    assert 0.0 <= float(fields["server_cache_hit_rate"]) <= 1.0
    # Per-stage latency quantiles from the request spans.
    for stage in ("decode", "handle", "encode"):
        key = 'server_request_stage_seconds{stage="%s"}' % stage
        assert int(fields[f"{key}-count"]) >= 3
        assert float(fields[f"{key}-p50"]) <= float(fields[f"{key}-p99"])
    assert int(fields["server_request_seconds-count"]) >= 3


def test_status_html_mode(server):
    resp = http_get(server.port,
                    b"GET /server-status HTTP/1.1\r\nHost: x\r\n\r\n")
    head, _, body = resp.partition(b"\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 200 OK")
    assert b"Content-Type: text/html" in head
    assert body.startswith(b"<!DOCTYPE html>")
    assert b"Total Accesses" in body


def test_status_head_request(server):
    resp = http_get(server.port,
                    b"HEAD /server-status?auto HTTP/1.1\r\nHost: x\r\n\r\n")
    head, _, body = resp.partition(b"\r\n\r\n")
    assert b"200 OK" in head
    assert body == b""


def test_status_counters_advance_between_scrapes(server):
    first = fields_of(http_get(
        server.port,
        b"GET /server-status?auto HTTP/1.1\r\nHost: x\r\n\r\n"
    ).partition(b"\r\n\r\n")[2])
    http_get(server.port, b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    second = fields_of(http_get(
        server.port,
        b"GET /server-status?auto HTTP/1.1\r\nHost: x\r\n\r\n"
    ).partition(b"\r\n\r\n")[2])
    assert int(second["Total Accesses"]) > int(first["Total Accesses"])


def test_status_observability_object_backs_the_page(server):
    obs = server.reactor.observability
    assert obs.registry.value("server_requests_total") > 0
    assert "server_requests_total" in obs.prometheus()


def test_status_trace_lists_recent_request_spans(server):
    for _ in range(2):
        assert b"200 OK" in http_get(
            server.port, b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    resp = http_get(server.port,
                    b"GET /server-status?trace HTTP/1.1\r\nHost: x\r\n\r\n")
    head, _, body = resp.partition(b"\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 200 OK")
    assert b"Content-Type: text/plain" in head
    text = body.decode()
    lines = text.splitlines()
    assert lines[0].startswith("Traces: ")
    assert int(lines[0].split(": ")[1]) >= 2
    # Every span line names its trace and carries the stage timings.
    span_lines = [line for line in lines[1:] if line]
    assert span_lines
    for line in span_lines:
        assert line.startswith("trace=")
        assert "total=" in line
    assert any("decode=" in line and "handle=" in line
               and "encode=" in line for line in span_lines)


def test_status_trace_ids_match_the_exporter(server):
    http_get(server.port, b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    resp = http_get(server.port,
                    b"GET /server-status?trace HTTP/1.1\r\nHost: x\r\n\r\n")
    body = resp.partition(b"\r\n\r\n")[2].decode()
    page_ids = {line.split()[0].removeprefix("trace=")
                for line in body.splitlines() if line.startswith("trace=")}
    exporter = server.reactor.observability.exporter
    exported = {f"{record['trace_id']:016x}"
                for record in exporter.records()}
    # The page renders the exporter's ring (modulo spans finishing
    # between the two reads): everything shown was really exported.
    assert page_ids <= exported
    assert page_ids


def test_plain_build_answers_404(plain_server):
    assert not hasattr(plain_server.reactor, "observability")
    resp = http_get(plain_server.port,
                    b"GET /server-status?auto HTTP/1.1\r\nHost: x\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 404")
    resp = http_get(plain_server.port,
                    b"GET /server-status?trace HTTP/1.1\r\nHost: x\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 404")
    # The regular document tree is untouched by the status route.
    resp = http_get(plain_server.port,
                    b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    assert b"front page" in resp
