"""Unit tests for the HTTP protocol library."""

import pytest

from repro.http import (
    BadRequest,
    Headers,
    HttpRequest,
    HttpResponse,
    error_response,
    guess_type,
    parse_request,
    reason_phrase,
    split_request,
)


# -- headers -------------------------------------------------------------------


def test_headers_case_insensitive_lookup():
    h = Headers([("Content-Type", "text/html")])
    assert h.get("content-type") == "text/html"
    assert "CONTENT-TYPE" in h


def test_headers_set_replaces_all():
    h = Headers([("X", "1"), ("x", "2")])
    h.set("X", "3")
    assert h.get_all("x") == ["3"]


def test_headers_preserve_order_and_spelling():
    h = Headers([("Host", "a"), ("Accept", "b")])
    assert list(h) == [("Host", "a"), ("Accept", "b")]
    assert h.encode() == b"Host: a\r\nAccept: b\r\n"


def test_headers_remove_and_default():
    h = Headers([("A", "1")])
    h.remove("a")
    assert h.get("A", "fallback") == "fallback"
    assert len(h) == 0


def test_headers_equality_folds_case():
    assert Headers([("A", "1")]) == Headers([("a", "1")])
    assert Headers([("A", "1")]) != Headers([("A", "2")])


# -- request model -----------------------------------------------------------------


def test_request_path_and_query():
    r = HttpRequest("GET", "/dir/file%20name.html?x=1&y=2", "HTTP/1.1")
    assert r.path == "/dir/file name.html"
    assert r.query == "x=1&y=2"


def test_keep_alive_defaults():
    r11 = HttpRequest("GET", "/", "HTTP/1.1")
    r10 = HttpRequest("GET", "/", "HTTP/1.0")
    assert r11.keep_alive and not r10.keep_alive


def test_keep_alive_overrides():
    r11 = HttpRequest("GET", "/", "HTTP/1.1",
                      Headers([("Connection", "close")]))
    r10 = HttpRequest("GET", "/", "HTTP/1.0",
                      Headers([("Connection", "Keep-Alive")]))
    assert not r11.keep_alive and r10.keep_alive


def test_validate_rejects_unknown_method():
    with pytest.raises(BadRequest) as exc:
        HttpRequest("BREW", "/", "HTTP/1.1",
                    Headers([("Host", "x")])).validate()
    assert exc.value.status == 501


def test_validate_rejects_bad_version():
    with pytest.raises(BadRequest) as exc:
        HttpRequest("GET", "/", "HTTP/2.0").validate()
    assert exc.value.status == 505


def test_validate_requires_host_for_11():
    with pytest.raises(BadRequest):
        HttpRequest("GET", "/", "HTTP/1.1").validate()
    HttpRequest("GET", "/", "HTTP/1.0").validate()  # 1.0: no Host needed


def test_validate_rejects_relative_target():
    with pytest.raises(BadRequest):
        HttpRequest("GET", "file.html", "HTTP/1.0").validate()


# -- parser: framing ---------------------------------------------------------------


def test_split_incomplete_returns_none():
    assert split_request(b"GET / HTTP/1.1\r\nHost: x\r\n") is None


def test_split_complete_no_body():
    raw = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"
    req, rest = split_request(raw + b"NEXT")
    assert req == raw and rest == b"NEXT"


def test_split_with_content_length_body():
    raw = b"POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
    req, rest = split_request(raw)
    assert req.endswith(b"hello") and rest == b""


def test_split_waits_for_full_body():
    partial = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel"
    assert split_request(partial) is None


def test_split_bare_lf_tolerated():
    req, rest = split_request(b"GET / HTTP/1.0\n\n")
    assert req == b"GET / HTTP/1.0\n\n" and rest == b""


def test_split_oversized_head_rejected():
    with pytest.raises(BadRequest) as exc:
        split_request(b"GET /" + b"a" * 70000)
    assert exc.value.status == 414


def test_split_oversized_body_rejected():
    with pytest.raises(BadRequest) as exc:
        split_request(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
    assert exc.value.status == 413


def test_split_malformed_content_length():
    with pytest.raises(BadRequest):
        split_request(b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
    with pytest.raises(BadRequest):
        split_request(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")


def test_split_pipelined_requests():
    one = b"GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
    two = b"GET /b HTTP/1.1\r\nHost: x\r\n\r\n"
    req, rest = split_request(one + two)
    assert req == one and rest == two


# -- parser: decoding ------------------------------------------------------------


def test_parse_simple_get():
    r = parse_request(b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n")
    assert r.method == "GET"
    assert r.target == "/index.html"
    assert r.version == "HTTP/1.1"
    assert r.headers.get("Host") == "example.com"
    assert r.body == b""


def test_parse_with_body():
    r = parse_request(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                      b"Content-Length: 4\r\n\r\nabcd")
    assert r.body == b"abcd"


def test_parse_lowercases_nothing_but_method_and_version():
    r = parse_request(b"get /MiXeD http/1.1\r\nhost: H\r\n\r\n")
    assert r.method == "GET" and r.version == "HTTP/1.1"
    assert r.target == "/MiXeD"


def test_parse_rejects_garbage():
    with pytest.raises(BadRequest):
        parse_request(b"\r\n\r\n")
    with pytest.raises(BadRequest):
        parse_request(b"GET /\r\n\r\n")           # 2-part request line
    with pytest.raises(BadRequest):
        parse_request(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n")


def test_parse_header_whitespace_stripped():
    r = parse_request(b"GET / HTTP/1.1\r\nHost:   spaced.example   \r\n\r\n")
    assert r.headers.get("Host") == "spaced.example"


# -- response ---------------------------------------------------------------------


def test_response_encode_fills_defaults():
    wire = HttpResponse(status=200, body=b"hi").encode(date="D")
    assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
    assert b"Content-Length: 2\r\n" in wire
    assert b"Server: " in wire and b"Date: D\r\n" in wire
    assert wire.endswith(b"\r\n\r\nhi")


def test_response_head_only_omits_body_keeps_length():
    wire = HttpResponse(status=200, body=b"body", head_only=True).encode(date="D")
    assert b"Content-Length: 4" in wire
    assert not wire.endswith(b"body")


def test_response_custom_headers_not_overwritten():
    resp = HttpResponse(status=200, body=b"x",
                        headers=Headers([("Content-Length", "99")]))
    assert b"Content-Length: 99" in resp.encode(date="D")


def test_error_response_shape():
    resp = error_response(404)
    assert resp.status == 404
    assert b"404 Not Found" in resp.body
    assert resp.headers.get("Content-Type") == "text/html"


def test_error_response_close_header():
    assert error_response(400, close=True).headers.get("Connection") == "close"


# -- misc -------------------------------------------------------------------------


def test_reason_phrases():
    assert reason_phrase(200) == "OK"
    assert reason_phrase(404) == "Not Found"
    assert reason_phrase(999) == "Unknown"


def test_guess_type():
    assert guess_type("/a/b/index.html") == "text/html"
    assert guess_type("IMG.JPG") == "image/jpeg"
    assert guess_type("archive.bin") == "application/octet-stream"


def test_parse_roundtrip_through_encode():
    """A response we encode is parseable by a naive client."""
    wire = HttpResponse(status=200, body=b"payload").encode(date="D")
    head, _, body = wire.partition(b"\r\n\r\n")
    assert body == b"payload"
    status_line = head.split(b"\r\n")[0]
    assert status_line == b"HTTP/1.1 200 OK"
