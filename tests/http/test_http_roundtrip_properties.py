"""Round-trip property suite for the HTTP library (hypothesis).

* a serialised request parses back with method, path, headers and body
  preserved;
* HEAD responses suppress the body on the wire but keep Content-Length;
* ``encode_segments()`` joined equals ``encode()`` byte-for-byte, with
  and without a header pool;
* exactly one Content-Length ever goes on the wire — a handler-set
  value is respected, duplicates are collapsed (RFC 7230: a split
  response is a request-smuggling hazard).
"""

from hypothesis import given, settings, strategies as st

from repro.http import Headers, HttpResponse, parse_request, split_request
from repro.runtime import BufferPool, segment_bytes

NAME = st.text(alphabet="abcdefghijklmnopqrstuvwxyz"
                        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-",
               min_size=1, max_size=16)
VALUE = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789 .;=,-",
                min_size=0, max_size=30).map(str.strip)
PATH = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789/._-",
               min_size=1, max_size=40).map(lambda s: "/" + s)
BODY = st.binary(max_size=300)

RESERVED = ("content-length", "host", "connection")

HEADER_LISTS = st.lists(
    st.tuples(NAME.filter(lambda n: n.lower() not in RESERVED), VALUE),
    max_size=5, unique_by=lambda item: item[0].lower())


def _request_wire(method, path, headers, body):
    lines = [f"{method} {path} HTTP/1.1", "Host: example.test"]
    lines += [f"{name}: {value}" for name, value in headers]
    if body:
        lines.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


@given(method=st.sampled_from(["GET", "HEAD", "POST", "PUT"]),
       path=PATH, headers=HEADER_LISTS, body=BODY)
@settings(max_examples=120, deadline=None)
def test_request_roundtrip_preserves_all_fields(method, path, headers, body):
    body = body if method in ("POST", "PUT") else b""
    wire = _request_wire(method, path, headers, body)
    framed, rest = split_request(wire)
    assert framed == wire and rest == b""
    parsed = parse_request(framed)
    parsed.validate()
    assert parsed.method == method
    assert parsed.path == path
    assert parsed.body == body
    for name, value in headers:
        assert parsed.headers.get_all(name) == [value]


@given(status=st.sampled_from([200, 204, 304, 404]), body=BODY,
       headers=HEADER_LISTS)
@settings(max_examples=100, deadline=None)
def test_head_suppresses_body_but_keeps_content_length(status, body, headers):
    response = HttpResponse(status=status, headers=Headers(headers),
                            body=body, head_only=True)
    wire = response.encode(date="D")
    head, sep, got_body = wire.partition(b"\r\n\r\n")
    assert sep == b"\r\n\r\n"
    assert got_body == b""                      # HEAD: nothing after the head
    assert wire == response.encode_head(date="D")
    content_lengths = [line for line in head.split(b"\r\n")
                       if line.lower().startswith(b"content-length:")]
    assert len(content_lengths) == 1
    assert int(content_lengths[0].split(b":")[1]) == len(body)


@given(status=st.sampled_from([200, 404, 500]), body=BODY,
       headers=HEADER_LISTS, head_only=st.booleans())
@settings(max_examples=100, deadline=None)
def test_encode_segments_equals_encode_byte_for_byte(status, body, headers,
                                                     head_only):
    response = HttpResponse(status=status, headers=Headers(headers),
                            body=body, head_only=head_only)
    flat = response.encode(date="D")

    plain = response.encode_segments(date="D")
    assert b"".join(segment_bytes(s) for s in plain) == flat

    pool = BufferPool(classes=(4096,))
    pooled = response.encode_segments(date="D", pool=pool)
    assert b"".join(segment_bytes(s) for s in pooled) == flat
    assert pool.stats.acquires == 1             # one pooled head per response
    # The body segment (when present) references the payload, no copy.
    if not head_only and body:
        assert isinstance(pooled[-1], memoryview)
        assert pooled[-1].obj is body


@given(body=BODY, claimed=st.integers(min_value=0, max_value=999),
       copies=st.integers(min_value=1, max_value=4))
@settings(max_examples=100, deadline=None)
def test_exactly_one_content_length_on_the_wire(body, claimed, copies):
    headers = Headers()
    for _ in range(copies):
        headers.add("Content-Length", str(claimed))
    wire = HttpResponse(status=200, headers=headers, body=body).encode(date="D")
    head = wire.partition(b"\r\n\r\n")[0]
    lines = [line for line in head.split(b"\r\n")
             if line.lower().startswith(b"content-length:")]
    assert len(lines) == 1
    # A handler-set value is respected (set-if-absent), not recomputed.
    assert int(lines[0].split(b":")[1]) == claimed


@given(body=BODY)
@settings(max_examples=60, deadline=None)
def test_content_length_defaults_to_body_size(body):
    wire = HttpResponse(status=200, body=body).encode(date="D")
    head, _sep, got_body = wire.partition(b"\r\n\r\n")
    assert got_body == body
    lines = [line for line in head.split(b"\r\n")
             if line.lower().startswith(b"content-length:")]
    assert len(lines) == 1
    assert int(lines[0].split(b":")[1]) == len(body)
