"""Property-based tests for the DES kernel's resources and stores."""

from hypothesis import given, settings, strategies as st

from repro.sim import Resource, Simulator, Store


@given(capacity=st.integers(1, 5),
       holds=st.lists(st.floats(min_value=0.01, max_value=2.0,
                                allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    peak = {"users": 0}

    def worker(hold):
        req = res.request()
        yield req
        peak["users"] = max(peak["users"], res.count)
        yield sim.timeout(hold)
        res.release(req)

    for hold in holds:
        sim.process(worker(hold))
    sim.run()
    assert peak["users"] <= capacity
    assert res.count == 0
    assert res.queue_length == 0


@given(capacity=st.integers(1, 4),
       holds=st.lists(st.floats(min_value=0.1, max_value=1.0,
                                allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_resource_work_conserving(capacity, holds):
    """Total makespan is at least total-work/capacity and at most
    total work (work-conserving FIFO bounds)."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)

    def worker(hold):
        req = res.request()
        yield req
        yield sim.timeout(hold)
        res.release(req)

    for hold in holds:
        sim.process(worker(hold))
    sim.run()
    total = sum(holds)
    assert sim.now >= total / capacity - 1e-9
    assert sim.now <= total + 1e-9


@given(items=st.lists(st.integers(), max_size=50))
@settings(max_examples=60, deadline=None)
def test_store_fifo_conservation(items):
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(n):
        for _ in range(n):
            value = yield store.get()
            got.append(value)

    sim.process(consumer(len(items)))
    for item in items:
        store.put(item)
    sim.run()
    assert got == list(items)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                 allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_clock_monotone_and_ends_at_max(delays):
    sim = Simulator()
    seen = []

    def proc(d):
        yield sim.timeout(d)
        seen.append(sim.now)

    for d in delays:
        sim.process(proc(d))
    sim.run()
    assert seen == sorted(seen)
    assert sim.now == max(delays)
