"""Property-based tests for histogram bucket/quantile invariants.

For any sequence of observations and any legal bucket layout:

* ``count``/``sum`` conserve the observations;
* cumulative bucket counts are monotone and end at ``count``;
* every ``le=b`` bucket counts exactly the observations ``<= b``;
* quantile estimates never leave the observed ``[min, max]`` range and
  are monotone in ``q``.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.obs import Histogram

values = st.lists(
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=200)

bucket_bounds = st.lists(
    st.floats(min_value=1e-6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=12, unique=True).map(sorted)


@given(vs=values, bounds=bucket_bounds)
@settings(max_examples=200, deadline=None)
def test_count_and_sum_conserved(vs, bounds):
    h = Histogram(buckets=bounds)
    for v in vs:
        h.observe(v)
    assert h.count == len(vs)
    assert math.isclose(h.sum, math.fsum(vs), rel_tol=1e-9, abs_tol=1e-9)


@given(vs=values, bounds=bucket_bounds)
@settings(max_examples=200, deadline=None)
def test_cumulative_buckets_monotone_and_exact(vs, bounds):
    h = Histogram(buckets=bounds)
    for v in vs:
        h.observe(v)
    snap = h.snapshot()
    cumulatives = [c for _, c in snap["buckets"]]
    assert cumulatives == sorted(cumulatives)
    assert cumulatives[-1] == len(vs)
    for bound, cumulative in snap["buckets"]:
        assert cumulative == sum(1 for v in vs if v <= bound)


@given(vs=values, bounds=bucket_bounds,
       qs=st.lists(st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False),
                   min_size=1, max_size=5))
@settings(max_examples=200, deadline=None)
def test_quantiles_within_observed_range_and_monotone(vs, bounds, qs):
    h = Histogram(buckets=bounds)
    for v in vs:
        h.observe(v)
    if not vs:
        assert all(h.quantile(q) is None for q in qs)
        return
    lo, hi = min(vs), max(vs)
    estimates = [h.quantile(q) for q in sorted(qs)]
    for e in estimates:
        assert lo <= e <= hi
    for earlier, later in zip(estimates, estimates[1:]):
        assert later >= earlier - 1e-9 * max(1.0, abs(earlier))


@given(vs=values)
@settings(max_examples=100, deadline=None)
def test_snapshot_quantile_keys_consistent(vs):
    h = Histogram()
    for v in vs:
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == len(vs)
    if vs:
        assert snap["min"] == min(vs)
        assert snap["max"] == max(vs)
        assert snap["min"] <= snap["p50"] <= snap["p90"] + 1e-12
        assert snap["p90"] <= snap["p99"] + 1e-12 <= snap["max"] + 1e-12
    else:
        assert snap["min"] is None and snap["p99"] is None
