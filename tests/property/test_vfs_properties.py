"""Differential property test: the FTP virtual filesystem against a
plain-dict reference model under random operation sequences."""

import posixpath

from hypothesis import given, settings, strategies as st

from repro.ftp import VfsError, VirtualFS

NAMES = st.sampled_from(["a", "b", "c", "dir1", "dir2", "f.txt"])
PATHS = st.lists(NAMES, min_size=1, max_size=3).map(
    lambda parts: "/" + "/".join(parts))

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("mkdir"), PATHS, st.just(b"")),
        st.tuples(st.just("write"), PATHS, st.binary(max_size=16)),
        st.tuples(st.just("delete"), PATHS, st.just(b"")),
        st.tuples(st.just("rmdir"), PATHS, st.just(b"")),
        st.tuples(st.just("read"), PATHS, st.just(b"")),
    ),
    max_size=60,
)


class DictModel:
    """Reference: files dict + dirs set, same semantics as VirtualFS."""

    def __init__(self):
        self.files = {}
        self.dirs = {"/"}

    def parent_ok(self, path):
        return posixpath.dirname(path) in self.dirs

    def mkdir(self, path):
        if path in self.dirs or path in self.files:
            raise VfsError("exists")
        if not self.parent_ok(path):
            raise VfsError("no parent")
        self.dirs.add(path)

    def write(self, path, data):
        if path in self.dirs:
            raise VfsError("is dir")
        if not self.parent_ok(path):
            raise VfsError("no parent")
        self.files[path] = data

    def delete(self, path):
        if path in self.dirs:
            raise VfsError("is dir")
        if path not in self.files:
            raise VfsError("missing")
        del self.files[path]

    def rmdir(self, path):
        if path == "/":
            raise VfsError("root")
        if path not in self.dirs:
            raise VfsError("not dir")
        if any(d != path and d.startswith(path + "/") for d in self.dirs) or \
                any(f.startswith(path + "/") for f in self.files):
            raise VfsError("not empty")
        self.dirs.discard(path)

    def read(self, path):
        if path not in self.files:
            raise VfsError("missing")
        return self.files[path]


@given(operations=OPS)
@settings(max_examples=150, deadline=None)
def test_vfs_matches_reference_model(operations):
    fs = VirtualFS()
    model = DictModel()
    for op, path, data in operations:
        fs_err = model_err = None
        fs_val = model_val = None
        try:
            if op == "mkdir":
                fs.mkdir(path)
            elif op == "write":
                fs.write_file(path, data)
            elif op == "delete":
                fs.delete(path)
            elif op == "rmdir":
                fs.rmdir(path)
            else:
                fs_val = fs.read_file(path)
        except VfsError:
            fs_err = True
        try:
            if op == "mkdir":
                model.mkdir(path)
            elif op == "write":
                model.write(path, data)
            elif op == "delete":
                model.delete(path)
            elif op == "rmdir":
                model.rmdir(path)
            else:
                model_val = model.read(path)
        except VfsError:
            model_err = True
        assert fs_err == model_err, (op, path, fs_err, model_err)
        assert fs_val == model_val
    # Final state agreement.
    for path, data in model.files.items():
        assert fs.read_file(path) == data
    for path in model.dirs:
        assert fs.is_dir(path)
