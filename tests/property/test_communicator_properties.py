"""Property-based tests for the Communicator's framing independence:
however the byte stream is chunked by the network, the replies are
byte-identical and in order."""

from hypothesis import given, settings, strategies as st

from repro.runtime import Communicator, ServerHooks


class MemoryHandle:
    def __init__(self):
        self.name = "mem"
        self.out_buffer = bytearray()
        self.sent = bytearray()
        self.last_activity = 0.0
        self.closed = False

    def try_recv(self, max_bytes=65536):
        return None

    def try_send(self):
        n = len(self.out_buffer)
        self.sent.extend(self.out_buffer)
        del self.out_buffer[:]
        return n

    @property
    def wants_write(self):
        return bool(self.out_buffer)

    def fileno(self):
        return -1

    def close(self):
        self.closed = True


class ReverseHooks(ServerHooks):
    def decode(self, raw, conn):
        return raw.rstrip(b"\n")

    def handle(self, request, conn):
        return request[::-1]

    def encode(self, result, conn):
        return result + b"\n"


LINES = st.lists(
    st.binary(max_size=30).filter(lambda b: b"\n" not in b),
    min_size=1, max_size=10,
)


@st.composite
def chunked_stream(draw):
    lines = draw(LINES)
    stream = b"".join(line + b"\n" for line in lines)
    cuts = draw(st.lists(st.integers(0, len(stream)), max_size=8))
    points = sorted(set([0, len(stream)] + cuts))
    chunks = [stream[a:b] for a, b in zip(points, points[1:])]
    return lines, chunks


@given(data=chunked_stream())
@settings(max_examples=150, deadline=None)
def test_chunking_does_not_change_replies(data):
    lines, chunks = data
    conn = Communicator(MemoryHandle(), ReverseHooks(), use_codec=True)
    for chunk in chunks:
        conn.in_buffer.extend(chunk)
        conn._pump_requests()
    expected = b"".join(line[::-1] + b"\n" for line in lines)
    assert bytes(conn.handle.sent) == expected
    assert conn.requests_completed == len(lines)


@given(data=chunked_stream())
@settings(max_examples=100, deadline=None)
def test_byte_at_a_time_equivalent_to_bulk(data):
    lines, _ = data
    stream = b"".join(line + b"\n" for line in lines)

    bulk = Communicator(MemoryHandle(), ReverseHooks(), use_codec=True)
    bulk.in_buffer.extend(stream)
    bulk._pump_requests()

    dribble = Communicator(MemoryHandle(), ReverseHooks(), use_codec=True)
    for i in range(len(stream)):
        dribble.in_buffer.extend(stream[i:i + 1])
        dribble._pump_requests()

    assert bytes(bulk.handle.sent) == bytes(dribble.handle.sent)
