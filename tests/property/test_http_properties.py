"""Property-based tests for the HTTP protocol library.

* framing + parsing round-trips arbitrary well-formed requests;
* the framing function never loses or invents bytes;
* the parser never crashes on arbitrary byte garbage — it either parses
  or raises BadRequest;
* response encoding always produces a parseable head with a correct
  Content-Length.
"""

from hypothesis import given, settings, strategies as st

from repro.http import (
    BadRequest,
    Headers,
    HttpResponse,
    parse_request,
    split_request,
)

TOKEN = st.text(alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_", min_size=1, max_size=16)
PATH = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789/._-", min_size=1, max_size=40).map(lambda s: "/" + s)
HEADER_VALUE = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789 .;=,-", min_size=0, max_size=30)
BODY = st.binary(max_size=200)


@st.composite
def wire_requests(draw):
    method = draw(st.sampled_from(["GET", "HEAD", "POST", "PUT"]))
    path = draw(PATH)
    headers = draw(st.lists(st.tuples(TOKEN, HEADER_VALUE), max_size=5))
    body = draw(BODY) if method in ("POST", "PUT") else b""
    lines = [f"{method} {path} HTTP/1.1", "Host: example.test"]
    for name, value in headers:
        if name.lower() in ("content-length", "host"):
            continue
        lines.append(f"{name}: {value}")
    if body:
        lines.append(f"Content-Length: {len(body)}")
    wire = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
    return wire, method, path, body


@given(req=wire_requests(), trailing=st.binary(max_size=50))
@settings(max_examples=120, deadline=None)
def test_framing_roundtrip(req, trailing):
    wire, method, path, body = req
    framed, rest = split_request(wire + trailing)
    assert framed == wire
    assert rest == trailing
    parsed = parse_request(framed)
    assert parsed.method == method
    assert parsed.target == path
    assert parsed.body == body


@given(req=wire_requests())
@settings(max_examples=60, deadline=None)
def test_framing_conserves_bytes(req):
    wire = req[0]
    framed, rest = split_request(wire + wire)   # two pipelined copies
    assert framed + rest == wire + wire


@given(garbage=st.binary(max_size=300))
@settings(max_examples=200, deadline=None)
def test_parser_never_crashes(garbage):
    try:
        result = split_request(garbage)
    except BadRequest:
        return
    if result is None:
        return
    framed, _rest = result
    try:
        parse_request(framed)
    except BadRequest:
        pass


@given(status=st.sampled_from([200, 204, 301, 404, 500]),
       body=st.binary(max_size=500),
       names=st.lists(TOKEN, max_size=4, unique_by=str.lower))
@settings(max_examples=80, deadline=None)
def test_response_encode_head_is_wellformed(status, body, names):
    headers = Headers([(n, "v") for n in names
                       if n.lower() not in ("content-length", "server", "date")])
    wire = HttpResponse(status=status, headers=headers, body=body).encode(date="D")
    head, sep, got_body = wire.partition(b"\r\n\r\n")
    assert sep == b"\r\n\r\n"
    assert got_body == body
    status_line = head.split(b"\r\n")[0].decode()
    assert status_line.startswith("HTTP/1.1 ")
    assert str(status) in status_line
    for line in head.split(b"\r\n")[1:]:
        assert b": " in line
        if line.lower().startswith(b"content-length"):
            assert int(line.split(b":")[1]) == len(body)
