"""Property-based tests for the O17 degradation plane.

Invariants:

* token-bucket conformance: over any timing of requests, the number of
  allows never exceeds burst + rate * elapsed (the bucket's contract);
* watermark hysteresis never flaps: the controller's accept/postpone
  answer always matches a reference two-state latch, including across
  adaptive retunes (which must preserve the latched state);
* a half-open circuit breaker admits *exactly* its probe quota, closes
  only when every probe succeeds, and re-opens with a fresh recovery
  timer on any probe failure.
"""

from hypothesis import given, settings, strategies as st

from repro.runtime.degradation import CircuitBreaker, TokenBucket
from repro.runtime.overload import OverloadController, Watermark


# -- token bucket ---------------------------------------------------------

RATES = st.floats(min_value=0.1, max_value=50.0,
                  allow_nan=False, allow_infinity=False)
BURSTS = st.floats(min_value=1.0, max_value=40.0,
                   allow_nan=False, allow_infinity=False)
GAPS = st.lists(st.floats(min_value=0.0, max_value=2.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200)


@given(rate=RATES, burst=BURSTS, gaps=GAPS)
@settings(max_examples=100, deadline=None)
def test_token_bucket_conformance(rate, burst, gaps):
    """Allows over any request timing stay within burst + rate * T."""
    bucket = TokenBucket(rate, burst, now=0.0)
    now = 0.0
    allowed = 0
    for gap in gaps:
        now += gap
        if bucket.allow(now):
            allowed += 1
    # Conservation: every allow spends one token; tokens only come from
    # the initial burst plus refill at `rate` over the elapsed time.
    assert allowed <= burst + rate * now + 1e-6
    # The bucket never goes negative and never exceeds its burst.
    assert -1e-9 <= bucket.tokens <= burst + 1e-9


@given(burst=st.integers(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_token_bucket_initial_burst_exact(burst):
    """With no time passing, exactly `burst` requests are admitted."""
    bucket = TokenBucket(rate=1.0, burst=float(burst), now=0.0)
    allows = [bucket.allow(0.0) for _ in range(burst + 5)]
    assert allows == [True] * burst + [False] * 5


# -- watermark hysteresis -------------------------------------------------

LENGTHS = st.lists(st.integers(min_value=0, max_value=60),
                   min_size=1, max_size=150)
MARKS = st.tuples(st.integers(min_value=0, max_value=20),
                  st.integers(min_value=1, max_value=30)).map(
    lambda pair: (pair[0], pair[0] + pair[1]))  # (low, high), low < high


@given(initial=MARKS, lengths=LENGTHS,
       retunes=st.lists(MARKS, max_size=10), data=st.data())
@settings(max_examples=100, deadline=None)
def test_hysteresis_matches_reference_latch(initial, lengths, retunes, data):
    """accepting() is exactly the two-state hysteresis latch, and a
    retune mid-stream moves the band without resetting the latch."""
    low, high = initial
    queue_length = {"n": 0}
    controller = OverloadController()
    controller.watch("q", lambda: queue_length["n"],
                     Watermark(high=high, low=low))

    tripped = False  # the reference model's latch
    pending = list(retunes)
    for length in lengths:
        if pending and data.draw(st.booleans(), label="retune now?"):
            low, high = pending.pop(0)
            controller.retune("q", high=high, low=low)
        queue_length["n"] = length
        accepted = controller.accepting()
        # reference: trip on length > high, clear on length < low,
        # hold state anywhere inside the band
        if tripped:
            if length < low:
                tripped = False
        elif length > high:
            tripped = True
        assert accepted == (not tripped)
        assert controller.overloaded_queues() == (["q"] if tripped else [])


@given(initial=MARKS, band_length=st.integers(min_value=0, max_value=60),
       checks=st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_hysteresis_no_flap_inside_band(initial, band_length, checks):
    """A length held anywhere in [low, high] never changes the answer."""
    low, high = initial
    length = max(low, min(high, band_length))  # clamp into the band
    queue_length = {"n": length}
    controller = OverloadController()
    controller.watch("q", lambda: queue_length["n"],
                     Watermark(high=high, low=low))
    first = controller.accepting()
    for _ in range(checks):
        assert controller.accepting() == first


# -- circuit breaker half-open probe quota --------------------------------

@given(threshold=st.integers(min_value=1, max_value=6),
       quota=st.integers(min_value=1, max_value=5),
       probes_succeed=st.booleans())
@settings(max_examples=80, deadline=None)
def test_breaker_half_open_exact_probe_quota(threshold, quota,
                                             probes_succeed):
    # 4.0 / 3.5 / 0.5 are all binary-exact, so the timer arithmetic
    # below is precise no matter how many trips accumulate
    clock = {"now": 0.0}
    breaker = CircuitBreaker(failure_threshold=threshold, recovery_time=4.0,
                             probe_quota=quota, clock=lambda: clock["now"])

    # trip it: exactly `threshold` consecutive failures
    for _ in range(threshold - 1):
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN

    # open: refuses everything until the recovery timer expires
    clock["now"] += 3.5
    assert not breaker.allow()
    clock["now"] += 0.5

    # half-open: exactly `quota` probes pass, all excess is refused
    admitted = sum(1 for _ in range(quota + 10) if breaker.allow())
    assert admitted == quota
    assert breaker.state == CircuitBreaker.HALF_OPEN

    if probes_succeed:
        # every probe succeeds -> closed, and requests flow again
        for i in range(quota):
            assert breaker.state == CircuitBreaker.HALF_OPEN, i
            breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
    else:
        # any probe failure -> re-open with a FRESH recovery timer
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock["now"] += 3.5
        assert not breaker.allow()      # old timer would have expired
        clock["now"] += 0.5
        assert breaker.allow()          # fresh timer has now expired
        assert breaker.state == CircuitBreaker.HALF_OPEN
