"""Property-based tests for the quota priority queue (option O8).

Invariants:

* no item is ever lost or duplicated;
* FIFO within a priority level;
* with every level continuously backlogged, long-run service counts
  match the quota ratio exactly;
* starvation freedom: any queued item is served within one full round
  of the quota cycle.
"""

from collections import defaultdict, deque

from hypothesis import given, settings, strategies as st

from repro.runtime import QuotaPriorityQueue

LEVELS = st.integers(min_value=0, max_value=3)
QUOTAS = st.dictionaries(LEVELS, st.integers(min_value=1, max_value=5),
                         min_size=1, max_size=4)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), LEVELS),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=300,
)


@given(quotas=QUOTAS, operations=ops)
@settings(max_examples=80, deadline=None)
def test_no_loss_no_duplication(quotas, operations):
    q = QuotaPriorityQueue(quotas)
    pushed = []
    popped = []
    counter = 0
    for op, level in operations:
        if op == "push":
            item = (level, counter)
            counter += 1
            q.push(item, priority=level)
            pushed.append(item)
        else:
            item = q.try_pop()
            if item is not None:
                popped.append(item)
    # Drain the rest.
    while True:
        item = q.try_pop()
        if item is None:
            break
        popped.append(item)
    assert sorted(popped) == sorted(pushed)
    assert len(popped) == len(set(popped))


@given(quotas=QUOTAS, pushes=st.lists(LEVELS, max_size=200))
@settings(max_examples=80, deadline=None)
def test_fifo_within_level(quotas, pushes):
    q = QuotaPriorityQueue(quotas)
    for i, level in enumerate(pushes):
        q.push((level, i), priority=level)
    seen_per_level = defaultdict(list)
    while True:
        item = q.try_pop()
        if item is None:
            break
        seen_per_level[item[0]].append(item[1])
    for level, seq in seen_per_level.items():
        assert seq == sorted(seq)


@given(quotas=st.dictionaries(st.integers(0, 2),
                              st.integers(min_value=1, max_value=6),
                              min_size=2, max_size=3))
@settings(max_examples=40, deadline=None)
def test_backlogged_service_matches_quota_ratio(quotas):
    q = QuotaPriorityQueue(quotas)
    rounds = 50
    per_round = sum(quotas.values())
    # Backlog every level deeply.
    for level in quotas:
        for i in range(rounds * quotas[level] + 10):
            q.push((level, i), priority=level)
    served = defaultdict(int)
    for _ in range(rounds * per_round):
        item = q.try_pop()
        served[item[0]] += 1
    for level, quota in quotas.items():
        assert served[level] == rounds * quota


@given(quotas=st.dictionaries(st.integers(0, 2),
                              st.integers(min_value=1, max_value=4),
                              min_size=2, max_size=3),
       burst=st.integers(min_value=1, max_value=50))
@settings(max_examples=40, deadline=None)
def test_starvation_freedom(quotas, burst):
    """A low-priority item queued behind a high-priority flood is served
    within one quota cycle."""
    q = QuotaPriorityQueue(quotas)
    low = min(quotas)
    high = max(quotas)
    if low == high:
        return
    q.push("victim", priority=low)
    for i in range(burst * 10):
        q.push(("flood", i), priority=high)
    cycle = sum(quotas.values())
    served = [q.try_pop() for _ in range(cycle + 1)]
    assert "victim" in served
