"""Property-based tests (hypothesis) for cache invariants.

Invariants that must hold for *every* policy under arbitrary operation
sequences:

* used bytes never exceed capacity;
* used bytes always equal the sum of live entry sizes;
* a get after a successful put (with no interleaving puts) hits;
* hits + misses == number of gets issued.
"""

from hypothesis import given, settings, strategies as st

from repro.cache import Cache, POLICIES, make_policy

KEYS = st.integers(min_value=0, max_value=30)
SIZES = st.integers(min_value=0, max_value=60)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, SIZES),
        st.tuples(st.just("get"), KEYS, st.just(0)),
        st.tuples(st.just("invalidate"), KEYS, st.just(0)),
    ),
    max_size=200,
)


@given(policy_name=st.sampled_from(sorted(POLICIES)), operations=ops)
@settings(max_examples=60, deadline=None)
def test_accounting_invariants(policy_name, operations):
    c = Cache(capacity=100, policy=make_policy(policy_name))
    gets = 0
    for op, key, size in operations:
        if op == "put":
            c.put(key, size)
        elif op == "get":
            c.get(key)
            gets += 1
        else:
            c.invalidate(key)
        assert c.used <= c.capacity
        assert c.used == sum(e.size for e in c.entries())
        assert len(c) == len(list(c.entries()))
    assert c.stats.hits + c.stats.misses == gets


@given(policy_name=st.sampled_from(sorted(POLICIES)),
       key=KEYS, size=st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_put_then_get_hits(policy_name, key, size):
    c = Cache(capacity=100, policy=make_policy(policy_name))
    if c.put(key, size):
        assert c.get(key) is not None


@given(operations=ops)
@settings(max_examples=60, deadline=None)
def test_lru_matches_reference_model(operations):
    """Differential test: our LRU against a simple ordered-dict model."""
    from collections import OrderedDict

    c = Cache(capacity=100, policy=make_policy("LRU"))
    model: OrderedDict = OrderedDict()
    used = 0

    def model_put(key, size):
        nonlocal used
        if key in model:
            used -= model.pop(key)
        if size > 100:
            return
        while used + size > 100:
            _, s = model.popitem(last=False)
            used -= s
        model[key] = size
        used += size

    for op, key, size in operations:
        if op == "put":
            c.put(key, size)
            model_put(key, size)
        elif op == "get":
            hit = c.get(key) is not None
            assert hit == (key in model)
            if key in model:
                model.move_to_end(key)
        else:
            c.invalidate(key)
            if key in model:
                used -= model.pop(key)
        assert set(model) == {e.key for e in c.entries()}
