"""Property-based tests over the N-Server template's option space.

For *every legal option combination* (the constraint-respecting subset
of the 12-option cross product is large, so hypothesis samples it):

* generation succeeds and every emitted module parses;
* the 27-class inventory matches the existence rules;
* the __init__ records exactly the options used;
* rendering is deterministic (same options -> byte-identical output).
"""

import ast

from hypothesis import assume, given, settings, strategies as st

from repro.co2p3s import OptionError
from repro.co2p3s.nserver import NSERVER

OPTION_VALUES = {
    "O1": st.sampled_from(["1", "2N"]),
    "O2": st.booleans(),
    "O3": st.booleans(),
    "O4": st.sampled_from(["Asynchronous", "Synchronous"]),
    "O5": st.sampled_from(["Dynamic", "Static"]),
    "O6": st.sampled_from([None, "LRU", "LFU", "LRU-MIN",
                           "LRU-Threshold", "Hyper-G", "Custom"]),
    "O7": st.booleans(),
    "O8": st.booleans(),
    "O9": st.booleans(),
    "O10": st.sampled_from(["Production", "Debug"]),
    "O11": st.booleans(),
    "O12": st.booleans(),
}

option_sets = st.fixed_dictionaries(OPTION_VALUES)


def legal(config) -> bool:
    try:
        NSERVER.validate(NSERVER.configure(config))
        return True
    except OptionError:
        return False


@given(config=option_sets)
@settings(max_examples=60, deadline=None)
def test_every_legal_config_generates_valid_python(config):
    assume(legal(config))
    report = NSERVER.render(NSERVER.configure(config), package="prop")
    assert report.files
    for filename, text in report.files.items():
        ast.parse(text)


@given(config=option_sets)
@settings(max_examples=60, deadline=None)
def test_class_inventory_follows_existence_rules(config):
    assume(legal(config))
    names = set(NSERVER.render(NSERVER.configure(config),
                               package="prop").class_names())
    async_io = config["O4"] == "Asynchronous"
    assert ("CompletionEvent" in names) == async_io
    assert ("FileOpenEvent" in names) == async_io
    assert ("FileReadEvent" in names) == async_io
    assert ("FileHandle" in names) == async_io
    assert ("Cache" in names) == (config["O6"] is not None)
    assert ("ProcessorController" in names) == (config["O5"] == "Dynamic")
    assert ("Observability" in names) == config["O11"]
    assert ("DecodeRequestEventHandler" in names) == config["O3"]
    assert ("EncodeReplyEventHandler" in names) == config["O3"]
    # The unconditional core is always present.
    for always in ("Event", "Handle", "Reactor", "Server",
                   "CommunicatorComponent", "EventDispatcher",
                   "EventProcessor", "AcceptorEventHandler",
                   "ServerConfiguration"):
        assert always in names


@given(config=option_sets)
@settings(max_examples=30, deadline=None)
def test_rendering_is_deterministic(config):
    assume(legal(config))
    opts = NSERVER.configure(config)
    a = NSERVER.render(opts, package="prop").files
    b = NSERVER.render(opts, package="prop").files
    assert a == b


@given(config=option_sets)
@settings(max_examples=30, deadline=None)
def test_init_records_options(config):
    assume(legal(config))
    report = NSERVER.render(NSERVER.configure(config), package="prop")
    init = report.files["__init__.py"]
    namespace = {}
    exec(compile("GENERATED_OPTIONS = " + init.split("GENERATED_OPTIONS = ")[1],
                 "<init>", "exec"), namespace)
    assert namespace["GENERATED_OPTIONS"] == NSERVER.configure(config).as_dict()


@given(config=option_sets)
@settings(max_examples=20, deadline=None)
def test_illegal_configs_are_rejected_not_miscompiled(config):
    assume(not legal(config))
    try:
        NSERVER.render(NSERVER.configure(config), package="prop")
    except OptionError:
        pass
    else:
        raise AssertionError("illegal config rendered without error")
