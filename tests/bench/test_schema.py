"""The BENCH_*.json schema and regression gate.

The committed baselines at the repository root must always validate —
they are what the CI ``bench`` job gates against — and the gate's rules
(derived ratios always, smoke-vs-smoke when available, absolute means
only between full runs on the identical machine) are pinned here.
"""

import copy
import json
import os

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    SUITES,
    build_report,
    compare_reports,
    machine_info,
    validate_report,
)

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def make_report(**overrides):
    """A minimal schema-valid report to mutate in the negative tests."""
    report = {
        "schema_version": SCHEMA_VERSION,
        "name": "shards",
        "created": 1754000000.0,
        "smoke": False,
        "machine": machine_info(),
        "options": {"O14": [1, 4]},
        "benchmarks": [
            {"test": "t[1]", "params": {"shards": 1},
             "extra": {"shards": 1}, "samples": [2.0, 2.2],
             "stats": {"min": 2.0, "max": 2.2, "mean": 2.1,
                       "stddev": 0.1, "rounds": 2}},
            {"test": "t[4]", "params": {"shards": 4},
             "extra": {"shards": 4}, "samples": [1.0, 1.2],
             "stats": {"min": 1.0, "max": 1.2, "mean": 1.1,
                       "stddev": 0.1, "rounds": 2}},
        ],
        "derived": {"shard_speedup_4v1": 2.1 / 1.1},
    }
    report.update(overrides)
    return report


# -- the committed baselines -----------------------------------------------

@pytest.mark.parametrize("name", sorted(SUITES))
def test_committed_baseline_validates(name):
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    assert os.path.exists(path), f"missing committed baseline {path}"
    with open(path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    assert validate_report(baseline) == []
    assert baseline["name"] == name
    assert not baseline["smoke"], "a baseline must come from a full run"
    assert baseline["derived"], "a baseline without ratios gates nothing"
    # Full baselines carry the smoke-mode ratios CI gates against.
    assert baseline.get("smoke_derived"), "baseline lacks smoke ratios"
    assert set(baseline["smoke_derived"]) == set(baseline["derived"])
    assert baseline["options"] == {
        key: list(values) for key, values in SUITES[name].options.items()}


def test_committed_baselines_pass_their_own_gate():
    for name in sorted(SUITES):
        path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
        with open(path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        assert compare_reports(baseline, baseline) == []


# -- schema validation -----------------------------------------------------

def test_valid_report_has_no_errors():
    assert validate_report(make_report()) == []


def test_non_object_report_is_rejected():
    assert validate_report([1, 2]) == ["report: expected object"]


@pytest.mark.parametrize("mutate, fragment", [
    (lambda r: r.update(schema_version=99), "schema_version"),
    (lambda r: r.update(name=7), "name"),
    (lambda r: r.update(smoke="no"), "smoke"),
    (lambda r: r.update(created=float("nan")), "created"),
    (lambda r: r.update(machine="laptop"), "machine"),
    (lambda r: r["machine"].pop("cpus"), "machine.cpus"),
    (lambda r: r.update(options=None), "options"),
    (lambda r: r.update(benchmarks=[]), "benchmarks"),
    (lambda r: r["benchmarks"][0].update(samples=[]),
     "benchmarks[0].samples"),
    (lambda r: r["benchmarks"][0]["stats"].pop("mean"),
     "benchmarks[0].stats.mean"),
    (lambda r: r.update(derived={"x": "fast"}), "derived.x"),
    (lambda r: r.update(smoke_derived={"x": None}), "smoke_derived.x"),
])
def test_schema_violations_name_their_path(mutate, fragment):
    report = make_report()
    mutate(report)
    errors = validate_report(report)
    assert errors, fragment
    assert any(fragment in error for error in errors), errors


# -- build_report ----------------------------------------------------------

def test_build_report_reshapes_pytest_benchmark_output():
    raw = {"benchmarks": [
        {"name": "test_x[1]", "params": {"shards": 1},
         "extra_info": {"shards": 1},
         "stats": {"data": [2.0, 2.2], "min": 2.0, "max": 2.2,
                   "mean": 2.1, "stddev": 0.1, "rounds": 2}},
        {"name": "test_x[4]", "params": {"shards": 4},
         "extra_info": {"shards": 4},
         "stats": {"data": [1.0, 1.2], "min": 1.0, "max": 1.2,
                   "mean": 1.05, "stddev": 0.1, "rounds": 2}},
    ]}
    report = build_report(SUITES["shards"], raw, smoke=True)
    assert validate_report(report) == []
    assert report["smoke"] is True
    assert report["benchmarks"][0]["samples"] == [2.0, 2.2]
    assert report["derived"] == {"shard_speedup_4v1": 2.1 / 1.05}


# -- the regression gate ---------------------------------------------------

def test_gate_passes_when_ratios_hold():
    assert compare_reports(make_report(), make_report()) == []


def test_gate_trips_on_a_collapsed_ratio():
    current = make_report(derived={"shard_speedup_4v1": 0.5})
    baseline = make_report(derived={"shard_speedup_4v1": 2.0})
    failures = compare_reports(current, baseline, ratio_floor=0.5)
    assert len(failures) == 1
    assert "shard_speedup_4v1" in failures[0]
    # A generous floor lets the same pair through.
    assert compare_reports(current, baseline, ratio_floor=0.2) == []


def test_gate_flags_a_ratio_missing_from_the_current_run():
    current = make_report(derived={})
    failures = compare_reports(current, make_report())
    assert failures and "missing" in failures[0]


def test_smoke_runs_gate_against_smoke_ratios():
    baseline = make_report(derived={"shard_speedup_4v1": 2.0},
                           smoke_derived={"shard_speedup_4v1": 0.6})
    # 0.7 would fail against the full-run 2.0 but is healthy against
    # the smoke reference — smoke compares smoke.
    smoke = make_report(smoke=True,
                        derived={"shard_speedup_4v1": 0.7})
    assert compare_reports(smoke, baseline) == []
    full = make_report(derived={"shard_speedup_4v1": 0.7},
                       machine={"python": "x", "platform": "y",
                                "machine": "z", "cpus": 1})
    assert compare_reports(full, baseline) != []


def test_absolute_means_gate_only_full_runs_on_the_same_machine():
    baseline = make_report()
    slow = copy.deepcopy(make_report())
    for bench in slow["benchmarks"]:
        bench["stats"]["mean"] *= 10
    # Same machine, both full: the 10x slowdown trips the gate.
    failures = compare_reports(slow, baseline)
    assert any("same machine" in failure for failure in failures)
    # A different machine fingerprint silences the absolute check.
    other = copy.deepcopy(slow)
    other["machine"] = dict(other["machine"], cpus=128)
    assert compare_reports(other, baseline) == []
    # So does a smoke run, even on the identical machine.
    smoked = copy.deepcopy(slow)
    smoked["smoke"] = True
    assert compare_reports(smoked, baseline) == []
