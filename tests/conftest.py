"""Shared pytest wiring for the test tree.

Puts ``tests/`` itself on ``sys.path`` so every test file can import
the deterministic concurrency harness as ``harness`` (see
``tests/harness/__init__.py``), and exposes its :class:`FakeClock`
as a fixture.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402
from hypothesis import settings  # noqa: E402

from harness import FakeClock  # noqa: E402

# Reproducible property tests in CI: derandomize makes hypothesis
# derive examples from the test body alone (fixed seed), so a red CI
# run is replayable locally with HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", deadline=None, derandomize=True,
                          print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def fake_clock():
    """A manually advanced monotonic clock (see ``harness.FakeClock``)."""
    return FakeClock()
