"""Shared pytest wiring for the test tree.

Puts ``tests/`` itself on ``sys.path`` so every test file can import
the deterministic concurrency harness as ``harness`` (see
``tests/harness/__init__.py``), and exposes its :class:`FakeClock`
as a fixture.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402
from hypothesis import settings  # noqa: E402

from harness import FakeClock  # noqa: E402

# Reproducible property tests in CI: derandomize makes hypothesis
# derive examples from the test body alone (fixed seed), so a red CI
# run is replayable locally with HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", deadline=None, derandomize=True,
                          print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def fake_clock():
    """A manually advanced monotonic clock (see ``harness.FakeClock``)."""
    return FakeClock()


def _poller_params():
    from repro.runtime import available_pollers
    have = available_pollers()
    return [
        pytest.param(name, marks=() if name in have else pytest.mark.skip(
            reason=f"{name} poller unavailable on this platform"))
        for name in ("select", "epoll")
    ]


@pytest.fixture(params=_poller_params())
def poller_backend(request, monkeypatch):
    """Parametrize a test over both readiness backends (O18 plane).

    Sets ``REPRO_POLLER`` so every ``SocketEventSource`` built while the
    test runs — including ones inside generated frameworks — picks the
    requested backend.  The ``epoll`` parameter is skipped on platforms
    without ``select.epoll``; ``select`` always runs and is the oracle.
    """
    monkeypatch.setenv("REPRO_POLLER", request.param)
    return request.param


@pytest.fixture(autouse=True)
def race_detector():
    """Ambient Eraser lockset detector, gated on ``REPRO_RACE_DETECTOR``.

    With ``REPRO_RACE_DETECTOR=1`` (the dedicated CI job) every test
    runs under an installed :class:`repro.lint.locks.RaceDetector`:
    the runtime's annotated shared fields feed the Eraser state machine
    and any candidate race not suppressed by ``lint-baseline.toml``
    fails the test with both conflicting stacks.  Without the variable
    the fixture yields ``None`` and the suite pays one env lookup.
    """
    if not os.environ.get("REPRO_RACE_DETECTOR"):
        yield None
        return
    from repro.lint.baseline import find_baseline
    from repro.lint.locks import RaceDetector, active_detector
    if active_detector() is not None:
        # a test (or nested fixture) manages its own detector
        yield None
        return
    detector = RaceDetector()
    detector.install()
    try:
        yield detector
    finally:
        detector.uninstall()
        findings = detector.findings(baseline=find_baseline())
        if findings:
            pytest.fail(
                "race detector found unsuppressed candidate races:\n"
                + "\n".join(f.render() for f in findings))
