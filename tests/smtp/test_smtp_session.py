"""Unit tests for the SMTP session state machine and mail store."""

import pytest

from repro.smtp import MailStore, Message, SmtpSession


@pytest.fixture
def session():
    return SmtpSession(MailStore(), hostname="test-host")


def code(reply: bytes) -> int:
    return int(reply[:3])


def test_greeting(session):
    assert session.greeting().startswith(b"220 test-host")


# -- framing --------------------------------------------------------------


def test_split_line_mode(session):
    assert session.split_unit(b"HELO x\r\nNOOP\r\n") == \
        (b"HELO x\r\n", b"NOOP\r\n")
    assert session.split_unit(b"HELO incompl") is None


def test_split_data_mode(session):
    session.in_data = True
    framed, rest = session.split_unit(b"line1\r\nline2\r\n.\r\nNEXT")
    assert framed == b"line1\r\nline2\r\n.\r\n"
    assert rest == b"NEXT"


def test_split_data_waits_for_terminator(session):
    session.in_data = True
    assert session.split_unit(b"partial body\r\n") is None


def test_split_empty_data_body(session):
    session.in_data = True
    framed, rest = session.split_unit(b".\r\n")
    assert framed == b".\r\n" and rest == b""


# -- command flow ----------------------------------------------------------------


def test_full_transaction(session):
    assert code(session.handle(b"EHLO client\r\n")) == 250
    assert code(session.handle(b"MAIL FROM:<a@x>\r\n")) == 250
    assert code(session.handle(b"RCPT TO:<b@y>\r\n")) == 250
    assert code(session.handle(b"RCPT TO:<c@z>\r\n")) == 250
    assert code(session.handle(b"DATA\r\n")) == 354
    assert session.in_data
    assert code(session.handle(b"Hello\r\n.\r\n")) == 250
    msgs = session.store.messages_for("b@y")
    assert len(msgs) == 1
    assert msgs[0].sender == "a@x"
    assert msgs[0].recipients == ("b@y", "c@z")
    assert msgs[0].body == b"Hello"


def test_mail_requires_helo(session):
    assert code(session.handle(b"MAIL FROM:<a@x>\r\n")) == 503


def test_rcpt_requires_mail(session):
    session.handle(b"HELO x\r\n")
    assert code(session.handle(b"RCPT TO:<b@y>\r\n")) == 503


def test_data_requires_rcpt(session):
    session.handle(b"HELO x\r\n")
    session.handle(b"MAIL FROM:<a@x>\r\n")
    assert code(session.handle(b"DATA\r\n")) == 503


def test_nested_mail_rejected(session):
    session.handle(b"HELO x\r\n")
    session.handle(b"MAIL FROM:<a@x>\r\n")
    assert code(session.handle(b"MAIL FROM:<other@x>\r\n")) == 503


def test_bad_address_syntax(session):
    session.handle(b"HELO x\r\n")
    assert code(session.handle(b"MAIL FROM: no-brackets\r\n")) == 501
    session.handle(b"MAIL FROM:<a@x>\r\n")
    assert code(session.handle(b"RCPT TO:<no-at-sign>\r\n")) == 501


def test_null_sender_allowed(session):
    """RFC 5321: MAIL FROM:<> is the null reverse-path (bounces)."""
    session.handle(b"HELO x\r\n")
    assert code(session.handle(b"MAIL FROM:<>\r\n")) == 250


def test_rset_clears_envelope(session):
    session.handle(b"HELO x\r\n")
    session.handle(b"MAIL FROM:<a@x>\r\n")
    session.handle(b"RCPT TO:<b@y>\r\n")
    assert code(session.handle(b"RSET\r\n")) == 250
    assert session.sender is None and session.recipients == []
    assert code(session.handle(b"MAIL FROM:<c@z>\r\n")) == 250


def test_envelope_reset_after_delivery(session):
    session.handle(b"HELO x\r\n")
    session.handle(b"MAIL FROM:<a@x>\r\n")
    session.handle(b"RCPT TO:<b@y>\r\n")
    session.handle(b"DATA\r\n")
    session.handle(b"m\r\n.\r\n")
    # A second transaction on the same connection works.
    assert code(session.handle(b"MAIL FROM:<a@x>\r\n")) == 250


def test_dot_unstuffing(session):
    session.handle(b"HELO x\r\n")
    session.handle(b"MAIL FROM:<a@x>\r\n")
    session.handle(b"RCPT TO:<b@y>\r\n")
    session.handle(b"DATA\r\n")
    session.handle(b"a\r\n..dots\r\n.\r\n")
    assert session.store.messages_for("b@y")[0].body == b"a\r\n.dots"


def test_quit_closes(session):
    reply = session.handle(b"QUIT\r\n")
    assert code(reply) == 221 and session.closed


def test_unknown_command(session):
    assert code(session.handle(b"TURN\r\n")) == 500


def test_noop_and_vrfy(session):
    assert code(session.handle(b"NOOP\r\n")) == 250
    assert code(session.handle(b"VRFY someone\r\n")) == 252


def test_ehlo_advertises_size(session):
    reply = session.handle(b"EHLO c\r\n")
    assert b"250-SIZE" in reply and reply.endswith(b"250 8BITMIME\r\n")


# -- store --------------------------------------------------------------------------


def test_store_multi_recipient_delivery():
    store = MailStore()
    store.deliver(Message(sender="s@x", recipients=("a@x", "b@x"),
                          body=b"m"))
    assert len(store.messages_for("a@x")) == 1
    assert len(store.messages_for("B@X")) == 1  # case-insensitive
    assert store.mailbox_count() == 2
    assert store.delivered == 1


def test_store_empty_mailbox():
    assert MailStore().messages_for("ghost@x") == []
