"""Tests for the simulated server models and the testbed harness.

These use short simulated durations — behaviour and invariants, not the
full calibrated sweeps (those are the benchmarks' job).
"""

import pytest

from repro.sim.testbed import TestbedConfig, run_testbed


def quick(server, clients=16, **kw):
    defaults = dict(duration=8.0, warmup=2.0, start_stagger=1.0)
    defaults.update(kw)
    return run_testbed(TestbedConfig(server=server, clients=clients,
                                     **defaults))


@pytest.mark.parametrize("server", ["cops", "apache", "sped", "mped", "seda"])
def test_every_model_serves_requests(server):
    r = quick(server)
    assert r.total_responses > 0
    assert r.throughput > 0


def test_unknown_server_rejected():
    with pytest.raises(ValueError):
        run_testbed(TestbedConfig(server="iis"))


def test_throughput_grows_with_clients_under_light_load():
    r4 = quick("cops", clients=4)
    r16 = quick("cops", clients=16)
    assert r16.throughput > 2.5 * r4.throughput


def test_closed_loop_light_load_rate():
    """At light load a client completes ~1/(think+wan+latency) req/s."""
    r = quick("cops", clients=2, duration=10.0)
    per_client = r.throughput / 2
    assert 4.0 < per_client < 7.5


def test_fairness_is_one_when_unsaturated():
    r = quick("apache", clients=8)
    assert r.fairness > 0.98


def test_apache_worker_cap_limits_concurrency():
    r = quick("apache", clients=64, apache_workers=2, duration=10.0)
    r_full = quick("apache", clients=64, duration=10.0)
    assert r.throughput < r_full.throughput * 0.6


def test_apache_unfair_when_clients_exceed_capacity():
    r = quick("apache", clients=96, apache_workers=4, backlog=4,
              duration=20.0, warmup=4.0)
    assert r.syn_drops > 0
    assert r.fairness < 0.9


def test_cops_accepts_everyone():
    r = quick("cops", clients=96, duration=15.0)
    assert r.syn_drops == 0
    assert r.fairness > 0.95


def test_cops_cache_hits_accumulate():
    r = quick("cops", clients=16)
    assert r.cache_hit_rate is not None and r.cache_hit_rate > 0.1


def test_cache_disabled_when_policy_none():
    r = quick("cops", clients=8, cache_policy=None)
    assert r.cache_hit_rate is None
    assert r.total_responses > 0


def test_os_buffer_hit_rate_reported():
    r = quick("apache", clients=16)
    assert 0.0 <= r.os_buffer_hit_rate <= 1.0


def test_scheduling_quotas_shift_throughput():
    classes = {i: ("portal" if i < 16 else "home") for i in range(32)}
    cfg = TestbedConfig(
        server="cops", clients=32, duration=10.0, warmup=2.0,
        start_stagger=1.0, cache_policy=None,
        processor_threads=1, decode_extra_cpu=0.02,  # queue is the bottleneck
        client_classes=classes,
        class_priorities={"portal": 1, "home": 0},
        scheduling_quotas={1: 4, 0: 1},
    )
    r = run_testbed(cfg)
    portal = r.class_throughput.get("portal", 0)
    home = r.class_throughput.get("home", 0)
    assert portal > 1.8 * home


def test_overload_control_bounds_response_time():
    base = dict(duration=12.0, warmup=3.0, start_stagger=1.0,
                decode_extra_cpu=0.05, clients=64)
    no_ctl = run_testbed(TestbedConfig(server="cops", overload=False, **base))
    ctl = run_testbed(TestbedConfig(server="cops", overload=True, **base))
    assert ctl.response_mean < 0.75 * no_ctl.response_mean
    assert ctl.throughput > 0.85 * no_ctl.throughput  # not degraded


def test_sped_slower_than_mped_when_disk_bound():
    """SPED blocks the whole loop on disk misses; MPED's helpers hide
    them.  Tiny OS buffer forces misses."""
    base = dict(clients=48, duration=12.0, warmup=3.0, start_stagger=1.0,
                os_buffer_mb=1, app_cache_mb=1, wan_delay=0.01)
    sped = run_testbed(TestbedConfig(server="sped", **base))
    mped = run_testbed(TestbedConfig(server="mped", **base))
    assert mped.throughput > sped.throughput


def test_determinism_same_seed_same_result():
    a = quick("cops", clients=12, seed=7)
    b = quick("cops", clients=12, seed=7)
    assert a.total_responses == b.total_responses
    assert a.throughput == b.throughput


def test_different_seed_different_trace():
    a = quick("cops", clients=12, seed=7)
    b = quick("cops", clients=12, seed=8)
    assert a.total_responses != b.total_responses or \
        a.response_mean != b.response_mean


def test_decode_sleep_caps_throughput():
    r = quick("cops", clients=64, decode_extra_cpu=0.05, duration=10.0)
    # 4 processor threads x 50 ms decode -> ~80 requests/s ceiling
    assert r.throughput < 95


# -- cluster extension (distributed N-Server, the paper's future work) -------


def test_cluster_serves_and_balances():
    r = quick("cluster", clients=32, cluster_nodes=2, duration=10.0)
    assert r.total_responses > 0
    assert r.fairness > 0.95


def test_cluster_round_robin_spreads_connections():
    from repro.sim.testbed import TestbedConfig, build_server
    from repro.sim import Simulator
    from repro.sim.disk import Disk
    from repro.sim.link import Link

    cfg = TestbedConfig(server="cluster", cluster_nodes=4, clients=64,
                        duration=8.0, warmup=2.0, start_stagger=1.0)
    r = run_testbed(cfg)
    assert r.total_responses > 0


def test_cluster_throughput_scales_with_nodes():
    base = dict(clients=128, duration=10.0, warmup=3.0, start_stagger=1.0,
                cpu_per_request=0.010, bandwidth_bps=1e9, wan_delay=0.05)
    one = run_testbed(TestbedConfig(server="cluster", cluster_nodes=1, **base))
    two = run_testbed(TestbedConfig(server="cluster", cluster_nodes=2, **base))
    assert two.throughput > 1.4 * one.throughput


def test_cluster_policy_validation():
    import pytest as _pytest
    from repro.sim.servers.cluster import ClusterServer
    from repro.sim import Simulator
    from repro.sim.disk import Disk
    from repro.sim.link import Link

    sim = Simulator()
    link = Link(sim)
    disk = Disk(sim)
    with _pytest.raises(ValueError):
        ClusterServer(sim, link, disk, nodes=0)
    with _pytest.raises(ValueError):
        ClusterServer(sim, link, disk, policy="random-ish")
