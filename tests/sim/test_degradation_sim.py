"""Simulation-level tests for the O17 degradation plane.

The sim's event-driven server runs the *real* runtime classes
(SheddingPolicy, SojournQueue, AdaptiveController) on the simulated
clock — these tests drive small deterministic overload scenarios and
check the explicit-rejection plumbing end to end: server decisions,
client-visible markers, and testbed accounting.
"""

import pytest

from repro.sim.testbed import TestbedConfig, TestbedResult, run_testbed


def _overload_config(**overrides):
    base = dict(
        server="cops", clients=64,
        duration=6.0, warmup=2.0,
        decode_extra_cpu=0.050,       # the Fig 6 CPU bottleneck
        overload=True, overload_high=20, overload_low=5,
        degradation=True,
        goodput_deadline=0.5,
    )
    base.update(overrides)
    return TestbedConfig(**base)


def test_degradation_requires_overload_control():
    """The template's option constraint (O17 -> O9) holds in the sim."""
    with pytest.raises(ValueError, match="overload"):
        run_testbed(_overload_config(overload=False))


def test_degradation_only_modelled_for_event_driven():
    with pytest.raises(ValueError, match="event-driven"):
        run_testbed(_overload_config(server="apache"))


def test_sheds_are_explicit_and_accounted():
    result = run_testbed(_overload_config())
    # deep overload: the plane made explicit decisions...
    assert result.shed_total > 0
    assert result.rejected_connections > 0
    # ...and each rejection is consistent accounting, not silence:
    # every shed the policy recorded maps to a rejected connection or
    # a sojourn-dropped request
    assert result.shed_total >= (result.rejected_connections
                                 + result.rejected_requests)
    # goodput can never exceed throughput (it is the subset of
    # responses that met the client deadline)
    assert 0.0 < result.goodput <= result.throughput + 1e-9


def test_explicit_rejection_beats_silent_postpone():
    """At the same deep overload, O17's cheap 503s keep clients inside
    the deadline where O9's silent postpone strands them (the cliff)."""
    shedding = run_testbed(_overload_config())
    postponing = run_testbed(_overload_config(degradation=False))
    assert shedding.goodput > 2.0 * postponing.goodput
    # throughput itself is NOT sacrificed (Fig 6's observation)
    assert shedding.throughput > 0.8 * postponing.throughput
    # the postpone build waits in the kernel backlog instead
    assert postponing.connect_wait_mean > shedding.connect_wait_mean


def test_adaptive_controller_retunes_on_sim_clock():
    result = run_testbed(_overload_config(
        adaptive=True, adaptive_interval=0.5, adaptive_target_p99=0.1))
    assert result.adaptive_adjustments > 0


def test_without_adaptive_no_adjustments():
    result = run_testbed(_overload_config())
    assert result.adaptive_adjustments == 0


def test_light_load_sheds_nothing():
    """Below the watermarks the plane is invisible: no rejections, and
    goodput equals throughput because every response is fast."""
    result = run_testbed(_overload_config(
        clients=2, decode_extra_cpu=0.0, duration=4.0, warmup=1.0))
    assert result.shed_total == 0
    assert result.rejected_connections == 0
    assert result.rejected_requests == 0
    assert result.goodput == pytest.approx(result.throughput)


def test_result_fields_round_trip():
    result = run_testbed(_overload_config(duration=3.0, warmup=1.0))
    assert isinstance(result, TestbedResult)
    assert result.config.degradation
    assert result.shed_total >= 0 and result.syn_drops >= 0
