"""Unit tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(100.0)
    sim.run(until=30.0)
    assert sim.now == 30.0


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_negative_timeout_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_sequences_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield sim.timeout(2.0)
        trace.append(sim.now)
        yield sim.timeout(3.0)
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 2.0, 5.0]


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc())
    sim.run()
    assert p.triggered and p.ok and p.value == 42


def test_process_is_waitable():
    sim = Simulator()
    result = []

    def child():
        yield sim.timeout(4.0)
        return "done"

    def parent():
        value = yield sim.process(child())
        result.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert result == [(4.0, "done")]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="payload")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append((sim.now, v))

    def trigger():
        yield sim.timeout(7.0)
        ev.succeed("go")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == [(7.0, "go")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    sim.call_in(1.0, lambda: ev.fail(ValueError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_event_triggered_twice_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_yield_already_fired_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    got = []

    def proc():
        yield sim.timeout(5.0)  # ev fires (and is processed) before this
        v = yield ev
        got.append((sim.now, v))

    sim.process(proc())
    sim.run()
    assert got == [(5.0, "early")]


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            trace.append("slept")
        except Interrupt as exc:
            trace.append(("interrupted", sim.now, exc.cause))

    p = sim.process(sleeper())
    sim.call_in(3.0, lambda: p.interrupt("wake up"))
    sim.run()
    assert trace == [("interrupted", 3.0, "wake up")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    p.interrupt()  # must not raise
    sim.run()


def test_uncaught_interrupt_fails_process():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    p = sim.process(sleeper())
    sim.call_in(1.0, lambda: p.interrupt())
    sim.run()
    assert p.triggered and not p.ok


def test_all_of_waits_for_every_event():
    sim = Simulator()
    got = []

    def proc():
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(5.0, "b")])
        got.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert got == [(5.0, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []

    def proc():
        ev, value = yield sim.any_of([sim.timeout(9.0, "slow"), sim.timeout(2.0, "fast")])
        got.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert got == [(2.0, "fast")]


def test_call_at_and_call_in():
    sim = Simulator()
    trace = []
    sim.call_at(4.0, lambda: trace.append(("at", sim.now)))
    sim.call_in(2.0, lambda: trace.append(("in", sim.now)))
    sim.run()
    assert trace == [("in", 2.0), ("at", 4.0)]


def test_call_at_in_past_raises():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_fifo_event_ordering_at_same_instant():
    sim = Simulator()
    trace = []
    for i in range(5):
        sim.call_in(1.0, lambda i=i: trace.append(i))
    sim.run()
    assert trace == [0, 1, 2, 3, 4]


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return "finished"

    p = sim.process(proc())
    assert sim.run_until_event(p) == "finished"
    assert sim.now == 2.0


def test_run_until_event_drained_raises():
    sim = Simulator()
    ev = sim.event()  # nothing will ever trigger it
    with pytest.raises(SimulationError):
        sim.run_until_event(ev)


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_serialises_access():
    sim = Simulator()
    trace = []

    res = Resource(sim, capacity=1)

    def worker(name, hold):
        req = res.request()
        yield req
        trace.append((name, "start", sim.now))
        yield sim.timeout(hold)
        res.release(req)
        trace.append((name, "end", sim.now))

    sim.process(worker("a", 3.0))
    sim.process(worker("b", 2.0))
    sim.run()
    assert trace == [
        ("a", "start", 0.0),
        ("a", "end", 3.0),
        ("b", "start", 3.0),
        ("b", "end", 5.0),
    ]


def test_resource_capacity_two_runs_pair_concurrently():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    ends = []

    def worker():
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)
        ends.append(sim.now)

    for _ in range(4):
        sim.process(worker())
    sim.run()
    assert ends == [5.0, 5.0, 10.0, 10.0]


def test_resource_priority_orders_queue():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(1.0)
        res.release(req)

    def claimant(name, prio):
        yield sim.timeout(0.1)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        res.release(req)

    sim.process(holder())
    sim.process(claimant("low", 10))
    sim.process(claimant("high", 1))
    sim.run()
    assert order == ["high", "low"]


def test_resource_queue_length_and_count():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    res.request()
    res.request()
    assert res.count == 1
    assert res.queue_length == 2
    res.release(r1)
    assert res.count == 1
    assert res.queue_length == 1


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # cancel while still queued
    assert res.queue_length == 0
    res.release(r1)
    assert res.count == 0


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def proc():
        v = yield store.get()
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        v = yield store.get()
        got.append((sim.now, v))

    sim.process(consumer())
    sim.call_in(6.0, lambda: store.put("late"))
    sim.run()
    assert got == [(6.0, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for i in range(3):
        store.put(i)
    got = []

    def consumer():
        for _ in range(3):
            v = yield store.get()
            got.append(v)

    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_bounded_store_try_put():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert store.is_full


def test_bounded_store_put_raises_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put(1)
    with pytest.raises(SimulationError):
        store.put(2)


def test_store_waiting_getter_bypasses_buffer():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer():
        v = yield store.get()
        got.append(v)

    sim.process(consumer())
    sim.run()
    store.put("direct")
    sim.run()
    assert got == ["direct"]
    assert len(store) == 0


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put("a")
    store.put("b")
    assert len(store) == 2


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(10):
        sim.timeout(1.0)
    sim.run()
    assert sim.events_processed == 10


def test_determinism_same_structure_same_trace():
    def build():
        sim = Simulator()
        trace = []

        def proc(i):
            yield sim.timeout(i * 0.5)
            trace.append((i, sim.now))

        for i in range(20):
            sim.process(proc(i))
        sim.run()
        return trace

    assert build() == build()
