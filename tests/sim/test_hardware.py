"""Tests for the simulated hardware: link, disk, CPU pool, TCP."""

import pytest

from repro.sim import Simulator
from repro.sim.disk import Disk, OsBufferCache
from repro.sim.host import CpuPool, multiprogramming_inflation
from repro.sim.link import Link
from repro.sim.tcp import ListenQueue, SimConnection, connect


def run_proc(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


# -- link ------------------------------------------------------------------


def test_link_serialization_time_scales_with_bytes():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=100e6)
    t1 = link.serialization_time(1460)
    t2 = link.serialization_time(14600)
    assert t2 > t1 * 9  # roughly linear


def test_link_framing_overhead():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=100e6, mtu=1500)
    # 1460 payload = 1 packet = 1500 wire bytes
    assert link.serialization_time(1460) == pytest.approx(1500 * 8 / 100e6)


def test_link_transfer_takes_wire_time():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=80e6, latency=0.0)

    def proc():
        yield from link.transfer(100_000)

    sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(link.serialization_time(100_000))
    assert link.bytes_carried == 100_000


def test_link_fifo_serialises_transfers():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=80e6, latency=0.0)
    finish = []

    def proc(n):
        yield from link.transfer(n)
        finish.append((n, sim.now))

    sim.process(proc(80_000))
    sim.process(proc(80_000))
    sim.run()
    # Second transfer waits for the first: finishes at ~2x.
    assert finish[1][1] == pytest.approx(2 * finish[0][1])


def test_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, bandwidth_bps=0)
    with pytest.raises(ValueError):
        Link(sim, mtu=10)


# -- disk ---------------------------------------------------------------------


def test_disk_miss_pays_seek_then_hit_is_fast():
    sim = Simulator()
    disk = Disk(sim, seek_time=0.008)
    times = []

    def proc():
        t0 = sim.now
        yield from disk.read("/f", 10_000)
        times.append(sim.now - t0)
        t0 = sim.now
        yield from disk.read("/f", 10_000)
        times.append(sim.now - t0)

    sim.process(proc())
    sim.run()
    assert times[0] > 0.008
    assert times[1] < 0.001
    assert disk.physical_reads == 1 and disk.buffered_reads == 1


def test_os_buffer_evicts_lru():
    buf = OsBufferCache(capacity_bytes=100)
    assert not buf.lookup("/a", 60)
    assert not buf.lookup("/b", 60)   # evicts /a
    assert not buf.lookup("/a", 60)   # miss again
    assert buf.lookup("/a", 60)


def test_disk_arm_serialises():
    sim = Simulator()
    disk = Disk(sim, seek_time=0.01, buffer_cache=OsBufferCache(1))
    done = []

    def proc(path):
        yield from disk.read(path, 1000)
        done.append(sim.now)

    sim.process(proc("/x"))
    sim.process(proc("/y"))
    sim.run()
    assert done[1] >= done[0] + 0.01  # second read waited for the arm


# -- cpu ------------------------------------------------------------------------


def test_cpu_pool_parallelism():
    sim = Simulator()
    cpu = CpuPool(sim, cpus=2)
    done = []

    def proc():
        yield from cpu.consume(1.0)
        done.append(sim.now)

    for _ in range(4):
        sim.process(proc())
    sim.run()
    assert done == [1.0, 1.0, 2.0, 2.0]
    assert cpu.busy_time == pytest.approx(4.0)
    assert cpu.utilization(2.0) == pytest.approx(1.0)


def test_cpu_zero_work_is_free():
    sim = Simulator()
    cpu = CpuPool(sim, cpus=1)

    def proc():
        yield from cpu.consume(0.0)
        yield sim.timeout(0)

    sim.process(proc())
    sim.run()
    assert sim.now == 0.0


def test_inflation_kicks_in_above_cpu_count():
    assert multiprogramming_inflation(4, 4) == 1.0
    assert multiprogramming_inflation(2, 4) == 1.0
    assert multiprogramming_inflation(104, 4, 0.004) == pytest.approx(1.4)


def test_cpu_validation():
    with pytest.raises(ValueError):
        CpuPool(Simulator(), cpus=0)


# -- tcp ---------------------------------------------------------------------------


def test_connect_succeeds_when_server_accepts():
    sim = Simulator()
    listen = ListenQueue(sim, backlog=8)

    def server():
        conn = yield listen.accept()
        conn.accepted.succeed(sim.now)

    def client():
        conn, wait, attempts = yield from connect(sim, listen, client_id=1,
                                                  syn_latency=0.0)
        return wait, attempts

    sim.process(server())
    p = sim.process(client())
    sim.run()
    wait, attempts = p.value
    assert attempts == 1 and wait == pytest.approx(0.0)


def test_syn_dropped_when_backlog_full_then_backoff():
    sim = Simulator()
    listen = ListenQueue(sim, backlog=1)
    # Fill the backlog; nobody accepts.
    filler = SimConnection(sim=sim, client_id=0)
    assert listen.try_syn(filler)

    def late_server():
        yield sim.timeout(2.5)   # drain the filler before the retry lands
        while True:
            conn = yield listen.accept()
            conn.accepted.succeed(sim.now)

    def client():
        conn, wait, attempts = yield from connect(
            sim, listen, client_id=1, rto_initial=3.0, syn_latency=0.0)
        return wait, attempts

    sim.process(late_server())
    p = sim.process(client())
    sim.run_until_event(p)
    wait, attempts = p.value
    assert attempts == 2
    assert wait >= 3.0
    assert listen.syn_drops == 1


def test_backoff_doubles_and_caps():
    sim = Simulator()
    listen = ListenQueue(sim, backlog=1)
    listen.try_syn(SimConnection(sim=sim, client_id=0))  # jam it
    attempt_times = []

    orig_try = listen.try_syn

    def spy(conn):
        attempt_times.append(sim.now)
        return orig_try(conn)

    listen.try_syn = spy

    def client():
        yield from connect(sim, listen, client_id=1, rto_initial=1.0,
                           rto_max=4.0, syn_latency=0.0)

    sim.process(client())
    sim.run(until=20.0)
    gaps = [attempt_times[i + 1] - attempt_times[i]
            for i in range(len(attempt_times) - 1)]
    assert gaps[0] == pytest.approx(1.0)
    assert gaps[1] == pytest.approx(2.0)
    assert gaps[2] == pytest.approx(4.0)
    assert all(g == pytest.approx(4.0) for g in gaps[2:])  # capped


def test_connection_close_sends_eof_sentinel():
    sim = Simulator()
    conn = SimConnection(sim=sim, client_id=1)
    got = []

    def reader():
        item = yield conn.requests.get()
        got.append(item)

    sim.process(reader())
    conn.close()
    sim.run()
    assert got == [None]
