"""Unit tests for the virtual filesystem."""

import pytest

from repro.ftp import VfsError, VirtualFS


@pytest.fixture
def fs():
    v = VirtualFS()
    v.makedirs("/pub/docs")
    v.write_file("/pub/readme.txt", b"hello")
    return v


def test_normalize():
    assert VirtualFS.normalize("a/b") == "/a/b"
    assert VirtualFS.normalize("/a/../b") == "/b"
    assert VirtualFS.normalize("/") == "/"
    assert VirtualFS.normalize("/a/./b/") == "/a/b"


def test_join():
    assert VirtualFS.join("/pub", "docs") == "/pub/docs"
    assert VirtualFS.join("/pub", "/abs") == "/abs"
    assert VirtualFS.join("/pub", "..") == "/"
    assert VirtualFS.join("/pub", "../../..") == "/"


def test_exists_and_types(fs):
    assert fs.exists("/pub/readme.txt") and fs.is_file("/pub/readme.txt")
    assert fs.is_dir("/pub/docs") and not fs.is_file("/pub/docs")
    assert not fs.exists("/nope")


def test_read_write_roundtrip(fs):
    fs.write_file("/pub/new.bin", b"\x00\x01")
    assert fs.read_file("/pub/new.bin") == b"\x00\x01"


def test_overwrite(fs):
    fs.write_file("/pub/readme.txt", b"v2")
    assert fs.read_file("/pub/readme.txt") == b"v2"


def test_append(fs):
    fs.append_file("/pub/readme.txt", b" world")
    assert fs.read_file("/pub/readme.txt") == b"hello world"
    fs.append_file("/pub/fresh.txt", b"start")
    assert fs.read_file("/pub/fresh.txt") == b"start"


def test_size(fs):
    assert fs.size("/pub/readme.txt") == 5
    with pytest.raises(VfsError):
        fs.size("/pub/docs")


def test_listdir_sorted(fs):
    fs.write_file("/pub/zzz", b"")
    fs.write_file("/pub/aaa", b"")
    assert fs.listdir("/pub") == ["aaa", "docs", "readme.txt", "zzz"]


def test_listdir_on_file_raises(fs):
    with pytest.raises(VfsError):
        fs.listdir("/pub/readme.txt")


def test_list_long_format(fs):
    lines = fs.list_long("/pub")
    assert any(line.startswith("drwx") and line.endswith("docs")
               for line in lines)
    assert any(line.startswith("-rw-") and line.endswith("readme.txt")
               for line in lines)


def test_mkdir_rmdir(fs):
    fs.mkdir("/pub/sub")
    assert fs.is_dir("/pub/sub")
    fs.rmdir("/pub/sub")
    assert not fs.exists("/pub/sub")


def test_mkdir_existing_raises(fs):
    with pytest.raises(VfsError):
        fs.mkdir("/pub")


def test_rmdir_nonempty_raises(fs):
    with pytest.raises(VfsError):
        fs.rmdir("/pub")


def test_makedirs_idempotent(fs):
    fs.makedirs("/a/b/c")
    fs.makedirs("/a/b/c")
    assert fs.is_dir("/a/b/c")


def test_delete(fs):
    fs.delete("/pub/readme.txt")
    assert not fs.exists("/pub/readme.txt")
    with pytest.raises(VfsError):
        fs.delete("/pub/readme.txt")
    with pytest.raises(VfsError):
        fs.delete("/pub/docs")  # directories use rmdir


def test_rename(fs):
    fs.rename("/pub/readme.txt", "/pub/docs/moved.txt")
    assert fs.read_file("/pub/docs/moved.txt") == b"hello"
    assert not fs.exists("/pub/readme.txt")


def test_rename_onto_existing_raises(fs):
    fs.write_file("/pub/other", b"x")
    with pytest.raises(VfsError):
        fs.rename("/pub/readme.txt", "/pub/other")


def test_write_into_missing_dir_raises(fs):
    with pytest.raises(VfsError):
        fs.write_file("/no/such/dir/f", b"x")


def test_root_is_protected(fs):
    with pytest.raises(VfsError):
        fs.rmdir("/")
    with pytest.raises(VfsError):
        fs.delete("/")


def test_walk(fs):
    paths = list(fs.walk("/"))
    assert "/" in paths and "/pub" in paths and "/pub/readme.txt" in paths
    assert paths[0] == "/"


def test_traversal_cannot_escape_root(fs):
    assert fs.join("/pub", "../../../../etc") == "/etc"
    assert not fs.exists("/etc")  # nothing outside the virtual tree
