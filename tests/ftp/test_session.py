"""Tests for the FTP session state machine and auth."""

import pytest

from repro.ftp import (
    AuthError,
    FtpSession,
    User,
    UserRegistry,
    VirtualFS,
)


@pytest.fixture
def fs():
    v = VirtualFS()
    v.makedirs("/pub")
    v.makedirs("/home/alice")
    v.write_file("/pub/file.txt", b"public data")
    return v


@pytest.fixture
def users():
    reg = UserRegistry(allow_anonymous=True)
    reg.add(User(name="alice", password="secret", home="/home/alice"))
    return reg


@pytest.fixture
def session(fs, users):
    return FtpSession(fs, users, on_pasv=lambda: ("127.0.0.1", 40000))


def send(session, line):
    return session.handle_command(line if isinstance(line, bytes)
                                  else line.encode())


def login(session, user=b"anonymous", password=b"guest@"):
    send(session, b"USER " + user)
    return send(session, b"PASS " + password)


def code(result):
    return int(result.replies[0][:3])


# -- auth -------------------------------------------------------------------


def test_greeting(session):
    assert session.greeting().startswith(b"220 ")


def test_anonymous_login(session):
    r = send(session, "USER anonymous")
    assert code(r) == 331
    r = send(session, "PASS whatever")
    assert code(r) == 230
    assert session.logged_in
    assert session.cwd == "/pub"


def test_password_checked(session):
    send(session, "USER alice")
    assert code(send(session, "PASS wrong")) == 530
    send(session, "USER alice")
    assert code(send(session, "PASS secret")) == 230
    assert session.cwd == "/home/alice"


def test_pass_without_user(session):
    assert code(send(session, "PASS x")) == 503


def test_unknown_user_rejected(session):
    send(session, "USER mallory")
    assert code(send(session, "PASS x")) == 530


def test_commands_require_login(session):
    for cmd in ("PWD", "CWD /", "LIST", "RETR f", "SIZE f", "PASV"):
        assert code(send(session, cmd)) == 530


def test_session_limit(fs):
    reg = UserRegistry(allow_anonymous=False)
    reg.add(User(name="bob", password="pw", max_sessions=1))
    s1 = FtpSession(fs, reg)
    login(s1, b"bob", b"pw")
    s2 = FtpSession(fs, reg)
    assert code(login(s2, b"bob", b"pw")) == 530
    send(s1, "QUIT")
    s3 = FtpSession(fs, reg)
    assert code(login(s3, b"bob", b"pw")) == 230


def test_registry_authenticate_errors():
    reg = UserRegistry(allow_anonymous=False)
    with pytest.raises(AuthError):
        reg.authenticate("ghost", "x")


# -- simple commands -----------------------------------------------------------


def test_quit(session):
    login(session)
    r = send(session, "QUIT")
    assert code(r) == 221 and r.close
    assert session.closed


def test_noop_syst_feat_help(session):
    assert code(send(session, "NOOP")) == 200
    assert code(send(session, "SYST")) == 215
    assert b"PASV" in send(session, "FEAT").wire
    assert b"RETR" in send(session, "HELP").wire


def test_type_and_mode(session):
    assert code(send(session, "TYPE I")) == 200
    assert session.type == "I"
    assert code(send(session, "TYPE X")) == 501
    assert code(send(session, "MODE S")) == 200
    assert code(send(session, "MODE B")) == 502
    assert code(send(session, "STRU F")) == 200
    assert code(send(session, "STRU R")) == 502


def test_unknown_command(session):
    assert code(send(session, "XYZZY")) == 500


def test_empty_line(session):
    assert code(send(session, b"\r\n")) == 500


# -- directories ------------------------------------------------------------------


def test_pwd_cwd_cdup(session):
    login(session)
    assert b'"/pub"' in send(session, "PWD").wire
    fssession = session.fs
    fssession.makedirs("/pub/sub")
    assert code(send(session, "CWD sub")) == 250
    assert session.cwd == "/pub/sub"
    assert code(send(session, "CDUP")) == 250
    assert session.cwd == "/pub"


def test_cwd_missing(session):
    login(session)
    assert code(send(session, "CWD nowhere")) == 550


def test_mkd_rmd_permissions(session):
    login(session)  # anonymous: not writable
    assert code(send(session, "MKD newdir")) == 550
    alice = FtpSession(session.fs, session.users,
                       on_pasv=lambda: ("127.0.0.1", 0))
    login(alice, b"alice", b"secret")
    assert code(send(alice, "MKD work")) == 257
    assert session.fs.is_dir("/home/alice/work")
    assert code(send(alice, "RMD work")) == 250


def test_write_outside_home_denied(fs, users):
    alice = FtpSession(fs, users)
    login(alice, b"alice", b"secret")
    assert code(send(alice, "DELE /pub/file.txt")) == 550
    assert fs.exists("/pub/file.txt")


def test_rename_sequence(fs, users):
    alice = FtpSession(fs, users)
    login(alice, b"alice", b"secret")
    fs.write_file("/home/alice/a.txt", b"data")
    assert code(send(alice, "RNFR a.txt")) == 350
    assert code(send(alice, "RNTO b.txt")) == 250
    assert fs.exists("/home/alice/b.txt")


def test_rnto_without_rnfr(session):
    login(session)
    assert code(send(session, "RNTO x")) == 503


def test_rnfr_interrupted_by_other_command(fs, users):
    alice = FtpSession(fs, users)
    login(alice, b"alice", b"secret")
    fs.write_file("/home/alice/a.txt", b"data")
    send(alice, "RNFR a.txt")
    send(alice, "NOOP")  # breaks the RNFR/RNTO sequence
    assert code(send(alice, "RNTO b.txt")) == 503


def test_size_and_stat(session):
    login(session)
    r = send(session, "SIZE file.txt")
    assert code(r) == 213 and b"11" in r.wire
    assert code(send(session, "SIZE missing")) == 550
    assert b"Working directory" in send(session, "STAT").wire


# -- data channel -----------------------------------------------------------------


def test_pasv_reply_encodes_address(session):
    login(session)
    r = send(session, "PASV")
    assert code(r) == 227
    assert b"(127,0,0,1,156,64)" in r.wire  # 40000 = 156*256 + 64
    assert session.passive


def test_port_parses_target(session):
    login(session)
    assert code(send(session, "PORT 10,0,0,2,4,1")) == 200
    assert session.active_target == ("10.0.0.2", 1025)
    assert code(send(session, "PORT 1,2,3")) == 501
    assert code(send(session, "PORT 999,0,0,1,0,1")) == 501


def test_transfer_requires_data_channel(session):
    login(session)
    assert code(send(session, "RETR file.txt")) == 425
    assert code(send(session, "LIST")) == 425


def test_retr_produces_transfer(session):
    login(session)
    send(session, "PASV")
    r = send(session, "RETR file.txt")
    assert code(r) == 150
    assert r.transfer.kind == "send"
    assert r.transfer.payload == b"public data"
    assert session.transfer_complete(True).startswith(b"226")


def test_retr_missing_file(session):
    login(session)
    send(session, "PASV")
    assert code(send(session, "RETR ghost")) == 550


def test_list_produces_listing(session):
    login(session)
    send(session, "PASV")
    r = send(session, "LIST")
    assert code(r) == 150
    assert b"file.txt" in r.transfer.payload


def test_nlst_short_names(session):
    login(session)
    send(session, "PASV")
    r = send(session, "NLST")
    assert r.transfer.payload == b"file.txt\r\n"


def test_stor_sink_writes_file(fs, users):
    alice = FtpSession(fs, users, on_pasv=lambda: ("127.0.0.1", 1))
    login(alice, b"alice", b"secret")
    send(alice, "PASV")
    r = send(alice, "STOR upload.bin")
    assert code(r) == 150 and r.transfer.kind == "receive"
    r.transfer.sink(b"uploaded-bytes")
    assert fs.read_file("/home/alice/upload.bin") == b"uploaded-bytes"
    assert alice.transfer_complete(True).startswith(b"226")


def test_appe_appends(fs, users):
    alice = FtpSession(fs, users, on_pasv=lambda: ("127.0.0.1", 1))
    login(alice, b"alice", b"secret")
    fs.write_file("/home/alice/log", b"one")
    send(alice, "PASV")
    r = send(alice, "APPE log")
    r.transfer.sink(b"+two")
    assert fs.read_file("/home/alice/log") == b"one+two"


def test_stor_denied_for_readonly(session):
    login(session)  # anonymous
    send(session, "PASV")
    assert code(send(session, "STOR up")) == 550


def test_transfer_failed_reply(session):
    assert session.transfer_complete(False).startswith(b"426")


def test_pasv_unavailable_without_callback(fs, users):
    s = FtpSession(fs, users, on_pasv=None)
    login(s)
    assert code(send(s, "PASV")) == 502
