"""Unit tests for the policy-agnostic cache core."""

import pytest

from repro.cache import Cache, CacheStats, LRUPolicy


def make(capacity=100):
    return Cache(capacity=capacity, policy=LRUPolicy())


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        make(0)


def test_put_get_roundtrip():
    c = make()
    assert c.put("a", 10, payload=b"AAAA")
    entry = c.get("a")
    assert entry is not None and entry.payload == b"AAAA" and entry.size == 10


def test_miss_returns_none_and_counts():
    c = make()
    assert c.get("nope") is None
    assert c.stats.misses == 1 and c.stats.hits == 0


def test_hit_counts():
    c = make()
    c.put("a", 10)
    c.get("a")
    c.get("a")
    assert c.stats.hits == 2
    assert c.stats.hit_rate == 1.0


def test_used_and_free_accounting():
    c = make(100)
    c.put("a", 30)
    c.put("b", 20)
    assert c.used == 50 and c.free == 50


def test_replace_existing_key_updates_size():
    c = make(100)
    c.put("a", 30)
    c.put("a", 50)
    assert c.used == 50
    assert len(c) == 1


def test_object_bigger_than_capacity_rejected():
    c = make(100)
    assert not c.put("huge", 101)
    assert c.stats.rejections == 1
    assert c.used == 0


def test_eviction_frees_space():
    c = make(100)
    c.put("a", 60)
    c.put("b", 60)  # must evict "a"
    assert "b" in c and "a" not in c
    assert c.stats.evictions == 1
    assert c.stats.bytes_evicted == 60


def test_invalidate_removes_without_eviction_count():
    c = make(100)
    c.put("a", 10)
    assert c.invalidate("a")
    assert not c.invalidate("a")
    assert c.stats.evictions == 0
    assert c.used == 0


def test_clear_empties_cache():
    c = make(100)
    c.put("a", 10)
    c.put("b", 10)
    c.clear()
    assert len(c) == 0 and c.used == 0


def test_negative_size_raises():
    c = make()
    with pytest.raises(ValueError):
        c.put("a", -1)


def test_zero_size_entry_allowed():
    c = make(10)
    assert c.put("empty", 0)
    assert c.get("empty") is not None


def test_peek_does_not_touch_bookkeeping():
    c = make()
    c.put("a", 10)
    before = c.peek("a").last_access
    c.peek("a")
    assert c.peek("a").last_access == before
    assert c.stats.hits == 0


def test_frequency_increments_on_get():
    c = make()
    c.put("a", 10)
    assert c.peek("a").frequency == 1
    c.get("a")
    assert c.peek("a").frequency == 2


def test_stats_snapshot_keys():
    s = CacheStats()
    snap = s.snapshot()
    assert set(snap) == {"hits", "misses", "insertions", "evictions",
                         "rejections", "hit_rate"}


def test_hit_rate_zero_when_no_lookups():
    assert CacheStats().hit_rate == 0.0
