"""Tests for the read-through FileCache front-end."""

import pytest

from repro.cache import FileCache, FileNotCacheable


def counting_loader(files):
    calls = {"n": 0}

    def loader(path):
        calls["n"] += 1
        if path not in files:
            raise FileNotFoundError(path)
        data = files[path]
        return len(data), data

    return loader, calls


def test_miss_then_hit():
    loader, calls = counting_loader({"/a": b"hello"})
    fc = FileCache(capacity=100, policy="LRU", loader=loader)
    first = fc.get_file("/a")
    second = fc.get_file("/a")
    assert not first.from_cache and second.from_cache
    assert calls["n"] == 1
    assert second.payload == b"hello"


def test_missing_file_propagates():
    loader, _ = counting_loader({})
    fc = FileCache(capacity=100, loader=loader)
    with pytest.raises(FileNotFoundError):
        fc.get_file("/nope")


def test_policy_by_name():
    fc = FileCache(capacity=100, policy="Hyper-G", loader=lambda p: (1, b"x"))
    assert fc.policy_name == "Hyper-G"


def test_threshold_policy_kwargs():
    fc = FileCache(capacity=1000, policy="LRU-Threshold", threshold=10,
                   loader=lambda p: (50, b"x" * 50))
    fc.get_file("/big")
    fc.get_file("/big")
    # 50 > threshold 10: never cached, loader consulted every time
    assert fc.stats.hits == 0


def test_not_cacheable_marker():
    def loader(path):
        raise FileNotCacheable(7, b"dynamic!")

    fc = FileCache(capacity=100, loader=loader)
    got = fc.get_file("/cgi")
    assert got.payload == b"dynamic!" and not got.from_cache
    assert not fc.contains("/cgi")


def test_invalidate():
    loader, calls = counting_loader({"/a": b"v1"})
    fc = FileCache(capacity=100, loader=loader)
    fc.get_file("/a")
    assert fc.invalidate("/a")
    fc.get_file("/a")
    assert calls["n"] == 2


def test_no_loader_raises():
    fc = FileCache(capacity=100)
    with pytest.raises(FileNotFoundError):
        fc.get_file("/anything")


def test_for_directory_reads_real_files(tmp_path):
    (tmp_path / "index.html").write_bytes(b"<html>hi</html>")
    fc = FileCache.for_directory(str(tmp_path), capacity=1 << 20)
    got = fc.get_file("/index.html")
    assert got.payload == b"<html>hi</html>"
    assert fc.get_file("/index.html").from_cache


def test_for_directory_rejects_traversal(tmp_path):
    (tmp_path / "f").write_bytes(b"ok")
    fc = FileCache.for_directory(str(tmp_path), capacity=1 << 20)
    with pytest.raises(FileNotFoundError):
        fc.get_file("/../etc/passwd")


def test_eviction_through_file_cache():
    files = {f"/f{i}": bytes(40) for i in range(5)}
    loader, _ = counting_loader(files)
    fc = FileCache(capacity=100, policy="LRU", loader=loader)
    for p in files:
        fc.get_file(p)
    assert fc.cache.used <= 100
    assert fc.stats.evictions >= 3
