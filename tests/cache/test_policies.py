"""Per-policy behaviour tests for the five Table-1 O6 policies + Custom."""

import pytest

from repro.cache import (
    Cache,
    CustomPolicy,
    HyperGPolicy,
    LFUPolicy,
    LRUMinPolicy,
    LRUPolicy,
    LRUThresholdPolicy,
    POLICIES,
    make_policy,
)


def test_policy_registry_matches_table1():
    assert set(POLICIES) == {"LRU", "LFU", "LRU-MIN", "LRU-Threshold", "Hyper-G"}


def test_make_policy_unknown_name():
    with pytest.raises(ValueError):
        make_policy("FIFO")


def test_make_policy_threshold_kwarg():
    p = make_policy("LRU-Threshold", threshold=100)
    assert p.threshold == 100


# -- LRU --------------------------------------------------------------------


def test_lru_evicts_least_recently_used():
    c = Cache(100, LRUPolicy())
    c.put("a", 40)
    c.put("b", 40)
    c.get("a")          # refresh a
    c.put("c", 40)      # must evict b
    assert "a" in c and "c" in c and "b" not in c


def test_lru_eviction_order_is_insertion_when_untouched():
    c = Cache(100, LRUPolicy())
    for k in "abcd":
        c.put(k, 25)
    c.put("e", 25)
    assert "a" not in c and all(k in c for k in "bcde")


# -- LFU --------------------------------------------------------------------


def test_lfu_evicts_least_frequent():
    c = Cache(100, LFUPolicy())
    c.put("hot", 40)
    c.put("cold", 40)
    for _ in range(5):
        c.get("hot")
    c.put("new", 40)    # evicts cold (freq 1) not hot (freq 6)
    assert "hot" in c and "cold" not in c


def test_lfu_tie_broken_by_lru():
    c = Cache(100, LFUPolicy())
    c.put("old", 40)
    c.put("newer", 40)
    c.put("x", 40)      # both freq 1; "old" was least recently touched
    assert "old" not in c and "newer" in c


# -- LRU-MIN ----------------------------------------------------------------


def test_lru_min_prefers_single_large_victim():
    c = Cache(100, LRUMinPolicy())
    c.put("big", 50)
    c.put("s1", 10)
    c.put("s2", 10)
    c.put("s3", 10)
    c.put("s4", 10)
    # Need 40 bytes; LRU-MIN should evict "big" (>= 40) even though the
    # small files are less recently used overall order-wise.
    c.get("big")  # make big the MOST recently used; plain LRU would spare it
    assert c.put("incoming", 40)
    assert "big" not in c
    assert all(k in c for k in ("s1", "s2", "s3", "s4"))


def test_lru_min_falls_back_to_smaller_classes():
    c = Cache(100, LRUMinPolicy())
    for i in range(10):
        c.put(f"s{i}", 10)
    # Need 40 bytes but no single file >= 40: halving threshold reaches
    # the 10-byte class and evicts the 4 least recently used.
    assert c.put("incoming", 40)
    assert "s0" not in c and "s3" not in c and "s4" in c


def test_lru_min_within_class_uses_lru():
    c = Cache(100, LRUMinPolicy())
    c.put("x", 50)
    c.put("y", 50)
    c.get("x")
    assert c.put("z", 50)
    assert "y" not in c and "x" in c


# -- LRU-Threshold ------------------------------------------------------------


def test_threshold_rejects_large_documents():
    c = Cache(1000, LRUThresholdPolicy(threshold=100))
    assert not c.put("big", 101)
    assert c.put("ok", 100)
    assert c.stats.rejections == 1


def test_threshold_evicts_lru_otherwise():
    c = Cache(100, LRUThresholdPolicy(threshold=60))
    c.put("a", 50)
    c.put("b", 50)
    c.get("a")
    c.put("c", 50)
    assert "b" not in c and "a" in c


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        LRUThresholdPolicy(0)


# -- Hyper-G ------------------------------------------------------------------


def test_hyper_g_evicts_lowest_frequency():
    c = Cache(100, HyperGPolicy())
    c.put("freq3", 40)
    c.put("freq1", 40)
    c.get("freq3")
    c.get("freq3")
    c.put("new", 40)
    assert "freq1" not in c and "freq3" in c


def test_hyper_g_frequency_tie_broken_by_recency():
    c = Cache(100, HyperGPolicy())
    c.put("older", 40)
    c.put("newer", 40)
    c.put("x", 40)
    assert "older" not in c and "newer" in c


def test_hyper_g_full_tie_broken_by_size_largest_first():
    c = Cache(100, HyperGPolicy())
    c.put("small", 10)
    c.put("large", 60)
    # Equalise recency by never touching either; frequency both 1.
    # last_access differs (insertion order), so pin recency equal by
    # accessing both once in the same relative order.
    c.get("small")
    c.get("large")
    # small is now older in recency than large; to isolate the size
    # tie-break we need identical (freq, recency) which the logical clock
    # forbids — instead verify sort key directly.
    entries = sorted(c.entries(), key=lambda e: (e.frequency, e.last_access, -e.size))
    assert entries[0].key == "small"  # least recent among equal-frequency


# -- Custom -------------------------------------------------------------------


def test_custom_policy_victim_hook():
    def biggest_first(entries, needed):
        return [e.key for e in sorted(entries, key=lambda e: -e.size)]

    c = Cache(100, CustomPolicy(victim_hook=biggest_first))
    c.put("small", 10)
    c.put("large", 80)
    c.put("incoming", 50)
    assert "large" not in c and "small" in c


def test_custom_policy_admit_hook():
    c = Cache(100, CustomPolicy(
        victim_hook=lambda entries, needed: [],
        admit_hook=lambda e: not str(e.key).endswith(".cgi"),
    ))
    assert not c.put("script.cgi", 10)
    assert c.put("page.html", 10)


# -- cross-policy invariants ---------------------------------------------------


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_policy_never_overfills(policy_name):
    c = Cache(100, make_policy(policy_name))
    for i in range(50):
        c.put(f"k{i}", 7 + (i % 13))
        assert c.used <= 100


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_policy_keeps_working_set_when_it_fits(policy_name):
    c = Cache(1000, make_policy(policy_name))
    for i in range(10):
        c.put(f"k{i}", 50)
    assert len(c) == 10 and c.stats.evictions == 0
