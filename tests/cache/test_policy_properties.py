"""Property-based eviction-policy invariants (hypothesis).

Beyond the accounting invariants in ``tests/property``:

* no policy ever lets used bytes exceed capacity, under arbitrary
  operation sequences;
* the eviction *victim* is policy-correct: LRU evicts only entries less
  recently used than every survivor, LFU (and Hyper-G) only entries
  whose (frequency, recency) rank below every survivor.
"""

from hypothesis import given, settings, strategies as st

from repro.cache import Cache, POLICIES, make_policy

CAPACITY = 100
KEYS = st.integers(min_value=0, max_value=15)
SIZES = st.integers(min_value=1, max_value=60)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, SIZES),
        st.tuples(st.just("get"), KEYS, st.just(0)),
    ),
    max_size=150,
)


def _fresh(policy_name):
    return Cache(capacity=CAPACITY, policy=make_policy(policy_name))


@given(policy_name=st.sampled_from(sorted(POLICIES)), operations=ops)
@settings(max_examples=80, deadline=None)
def test_capacity_never_exceeded(policy_name, operations):
    c = _fresh(policy_name)
    for op, key, size in operations:
        if op == "put":
            c.put(key, size)
        else:
            c.get(key)
        assert c.used <= c.capacity
        assert c.used == sum(e.size for e in c.entries())


class _Model:
    """Shadow bookkeeping: recency and frequency per live key, using
    the same rules as CacheEntry (insert counts as one use)."""

    def __init__(self):
        self.tick = 0
        self.last = {}
        self.freq = {}

    def on_put(self, key):
        self.tick += 1
        self.last[key] = self.tick
        self.freq[key] = 1

    def on_hit(self, key):
        self.tick += 1
        self.last[key] = self.tick
        self.freq[key] += 1

    def drop(self, key):
        self.last.pop(key, None)
        self.freq.pop(key, None)


def _run_with_victim_check(policy_name, operations, rank):
    """Replay ``operations``; after every eviction assert each evicted
    key ranked no higher than every surviving key under ``rank``."""
    c = _fresh(policy_name)
    model = _Model()
    for op, key, size in operations:
        if op == "get":
            if c.get(key) is not None:
                model.on_hit(key)
            continue
        before = {e.key for e in c.entries()}
        ranks = {k: rank(model, k) for k in before}
        inserted = c.put(key, size)
        after = {e.key for e in c.entries()}
        evicted = before - after - {key}
        survivors = after - {key}
        for loser in evicted:
            assert all(ranks[loser] <= ranks[winner] for winner in survivors), \
                f"{policy_name} evicted {loser} over {survivors}"
            model.drop(loser)
        if key in before and key not in after:
            model.drop(key)      # replacement put that was then rejected
        if inserted:
            model.on_put(key)


@given(operations=ops)
@settings(max_examples=80, deadline=None)
def test_lru_evicts_least_recently_used(operations):
    _run_with_victim_check("LRU", operations,
                           rank=lambda m, k: m.last[k])


@given(operations=ops)
@settings(max_examples=80, deadline=None)
def test_lfu_evicts_least_frequently_used(operations):
    _run_with_victim_check("LFU", operations,
                           rank=lambda m, k: (m.freq[k], m.last[k]))


@given(operations=ops)
@settings(max_examples=80, deadline=None)
def test_hyper_g_ranks_frequency_then_recency(operations):
    _run_with_victim_check("Hyper-G", operations,
                           rank=lambda m, k: (m.freq[k], m.last[k]))


@given(operations=ops, threshold=st.integers(min_value=1, max_value=60))
@settings(max_examples=60, deadline=None)
def test_lru_threshold_never_admits_oversize(operations, threshold):
    c = Cache(capacity=CAPACITY,
              policy=make_policy("LRU-Threshold", threshold=threshold))
    for op, key, size in operations:
        if op == "put":
            admitted = c.put(key, size)
            if size > threshold:
                assert not admitted
        else:
            c.get(key)
        assert all(e.size <= threshold for e in c.entries())
        assert c.used <= c.capacity
