"""Table 2 bench: compute the option x class crosscut matrix empirically
(generate + toggle + diff) and assert the exact match with the paper."""

from repro.experiments import format_table2, run_table2


def test_table2_crosscut(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    assert result.matches_paper, result.vs_expected
    assert result.vs_declared == [], result.vs_declared
    print()
    print(format_table2(result))
