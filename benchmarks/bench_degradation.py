"""O17 bench: goodput under deepening overload, graceful vs cliff.

Runs the ``fig6-cliff`` sweep (50 ms decode bottleneck, clients pushed
far past saturation) across the three admission-control variants and
gates the shape the degradation plane exists to produce:

* the O17 build holds >= 70% of its peak goodput at the deepest
  overload (graceful);
* both baselines — no control, and O9's silent postpone — collapse
  (the cliff);
* throughput is NOT degraded by the shedding (the paper's Fig 6
  observation carries over to O17's explicit rejections).

The derived ratios CI gates (``BENCH_degradation.json``):
``goodput_retention_2x`` — O17 goodput at max load over its peak — and
``cliff_ratio`` — O17 retention over the best baseline retention.
"""

import os

import pytest

from repro.experiments import (
    format_degradation_cliff,
    goodput_retention,
    run_degradation_cliff,
)

#: ``python -m repro.bench --smoke`` sets this: a shrunk sweep whose
#: absolute goodput means little but whose retention ratios still
#: collapse when the degradation plane breaks.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENTS = (16, 64) if SMOKE else (16, 32, 64, 96)
DURATION = 10.0 if SMOKE else 20.0
WARMUP = 3.0 if SMOKE else 6.0


def test_degradation_cliff(benchmark):
    points = benchmark.pedantic(
        run_degradation_cliff,
        kwargs=dict(client_counts=CLIENTS, duration=DURATION,
                    warmup=WARMUP),
        rounds=1, iterations=1)

    retention = {variant: goodput_retention(points, variant)
                 for variant in ("none", "postpone", "degradation")}
    baseline = max(retention["none"], retention["postpone"])

    # Graceful: the O17 build holds >= 70% of peak goodput at the
    # deepest overload point (>= 2x the saturating client count).
    assert retention["degradation"] >= 0.70

    # Cliff: without the plane, goodput collapses.
    assert retention["none"] < 0.5
    assert retention["postpone"] < 0.5
    assert retention["degradation"] >= 2.0 * baseline

    # Shedding does not degrade raw throughput (Fig 6's observation).
    heavy = max(p.clients for p in points)
    by_variant = {p.variant: p for p in points if p.clients == heavy}
    assert (by_variant["degradation"].throughput
            > 0.9 * by_variant["postpone"].throughput)

    # The holds came from explicit decisions, not luck.
    assert by_variant["degradation"].shed_total > 0

    benchmark.extra_info["goodput_retention_2x"] = \
        round(retention["degradation"], 4)
    benchmark.extra_info["cliff_ratio"] = round(
        retention["degradation"] / baseline if baseline > 0
        else retention["degradation"] / 0.01, 4)
    benchmark.extra_info["baseline_retention"] = round(baseline, 4)
    benchmark.extra_info["clients"] = list(CLIENTS)

    print()
    print(format_degradation_cliff(points))


@pytest.mark.skipif(SMOKE, reason="hill-climb search is not meaningful shrunk")
def test_watermark_hill_climb(benchmark):
    """The offline tuning loop finds a watermark at least as good as
    the paper's hand-picked 20 (and stays inside its bounds)."""
    from repro.experiments import tune_watermark

    best, score = benchmark.pedantic(
        tune_watermark,
        kwargs=dict(clients=64, duration=6.0, warmup=2.0, budget=6),
        rounds=1, iterations=1)
    assert 4 <= best <= 64
    assert score > 0
    benchmark.extra_info["best_high"] = best
    benchmark.extra_info["best_goodput"] = round(score, 2)
