"""Table 3 bench: the COPS-FTP code distribution.

Absolute NCSS differs from the paper (Python vs Java); the asserted
reproduction targets are the paper's qualitative claims: reused code
dominates, generated code is substantial, and hand-written adaptation
code is a small share."""

from repro.experiments import format_table3, run_table3


def test_table3_ftp_code_distribution(benchmark):
    result = benchmark.pedantic(run_table3, rounds=3, iterations=1)
    c = result.categories
    # Shape assertions mirroring the paper's distribution:
    assert c["Reused code"].ncss > c["Added code"].ncss          # 8141 > 1897
    assert c["Generated code"].ncss > c["Added code"].ncss       # 2937 > 1897
    assert c["Removed code"].ncss < c["Reused code"].ncss        # 1186 < 8141
    # "Only 711 lines of extra code have to be programmed" -> the manual
    # share is small:
    assert result.handwritten_fraction() < 0.25                  # paper: 14.6%
    print()
    print(format_table3(result))
