"""Extension bench: the distributed N-Server (the paper's future work).

"The most interesting extension of this work is to support the
generation of distributed N-servers that will serve from a network of
workstations."  The cluster model load-balances connections across
independent event-driven nodes; this bench measures throughput scaling
with the node count under a CPU-bound workload (wide network so the
servers, not the wire, are the limit), and compares the two balancing
policies.
"""

from repro.analysis import render_table
from repro.sim.testbed import TestbedConfig, run_testbed


def run_cluster_scaling():
    results = {}
    common = dict(clients=512, duration=25.0, warmup=6.0,
                  cpu_per_request=0.010, bandwidth_bps=1e9,
                  wan_delay=0.05)
    for nodes in (1, 2, 4):
        cfg = TestbedConfig(server="cluster", cluster_nodes=nodes, **common)
        results[f"{nodes} node(s), round-robin"] = run_testbed(cfg)
    cfg = TestbedConfig(server="cluster", cluster_nodes=4,
                        cluster_policy="least-connections", **common)
    results["4 node(s), least-conn"] = run_testbed(cfg)
    # Single big SMP box of the same total CPU count, for comparison.
    cfg = TestbedConfig(server="cops", cpus=16, processor_threads=16,
                        **common)
    results["1 x 16-cpu SMP"] = run_testbed(cfg)
    return results


def test_cluster_scaling(benchmark):
    results = benchmark.pedantic(run_cluster_scaling, rounds=1, iterations=1)

    t1 = results["1 node(s), round-robin"].throughput
    t2 = results["2 node(s), round-robin"].throughput
    t4 = results["4 node(s), round-robin"].throughput
    assert t2 > 1.6 * t1
    assert t4 > 2.6 * t1
    # Both balancing policies stay fair and comparable.
    lc = results["4 node(s), least-conn"]
    assert lc.throughput > 0.9 * t4
    assert lc.fairness > 0.95
    for r in results.values():
        assert r.fairness > 0.9

    rows = [[name, f"{r.throughput:.1f}", f"{r.fairness:.3f}",
             f"{r.response_mean*1000:.0f}"]
            for name, r in results.items()]
    print()
    print(render_table(
        ["deployment", "thr/s", "fairness", "resp ms"], rows,
        title="EXTENSION — DISTRIBUTED N-SERVER SCALING "
              "(CPU-bound, 512 clients)"))
