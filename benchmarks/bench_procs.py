"""O16 bench: 1 vs 4 worker processes.

Two measurements:

* real sockets — the generated COPS-HTTP framework at O16=1 and O16=4
  serving a materialised SpecWeb99 file set to concurrent clients
  (this is the BENCH_procs.json artifact CI uploads; on a single-core
  host the honest ratio is ~1.0x minus supervisor overhead, and the
  gate compares against the committed baseline, not an aspiration);
* CPU-bound scaling — the fig3-procs sweep, where a GIL-holding hook
  makes processes the only axis that can scale; its absolute floor
  assertion only fires on hosts with >= 4 cores.
"""

import os
import socket
import threading

import pytest

from repro.analysis import render_table
from repro.servers.cops_http import build_cops_http
from repro.workload import SpecWebFileSet

#: ``python -m repro.bench --smoke`` sets this: a shrunk workload whose
#: absolute times are meaningless but whose process-speedup ratio still
#: moves when the deployment plane breaks.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENTS = 2 if SMOKE else 4
REQUESTS_PER_CLIENT = 5 if SMOKE else 40


def materialise_fileset(root, total_mb=2.0, seed=3):
    """Write a small SpecWeb99 tree and return Zipf-ordered GET paths."""
    fileset = SpecWebFileSet(total_mb, zipf_alpha=1.0, seed=seed)
    for path, size in fileset.files():
        target = root / path.lstrip("/")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(b"x" * size)
    return [fileset.sample()[0]
            for _ in range(CLIENTS * REQUESTS_PER_CLIENT)]


def get(port, path):
    s = socket.create_connection(("127.0.0.1", port), timeout=10)
    s.settimeout(10)
    try:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: b\r\n"
                  "Connection: close\r\n\r\n".encode())
        data = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                return data
            data += chunk
    finally:
        s.close()


def drive(port, paths):
    """CLIENTS concurrent closed-loop clients, Zipf request streams."""
    per_client = len(paths) // CLIENTS
    failures = []

    def client(i):
        for path in paths[i * per_client:(i + 1) * per_client]:
            if not get(port, path).startswith(b"HTTP/1.1 200"):
                failures.append(path)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures[:3]


@pytest.mark.parametrize("procs", (1, 4))
def test_cops_http_procs_throughput(benchmark, tmp_path, procs):
    docroot = tmp_path / "docroot"
    docroot.mkdir()
    paths = materialise_fileset(docroot)
    server, _fw, _report = build_cops_http(
        str(docroot), dest=str(tmp_path / "build"),
        package=f"bench_procs_{procs}_fw", procs=procs)
    server.start()
    try:
        benchmark.pedantic(drive, args=(server.port, paths),
                           rounds=3, iterations=1, warmup_rounds=1)
    finally:
        server.stop()
    benchmark.extra_info["procs"] = procs
    benchmark.extra_info["requests"] = len(paths)


def test_procs_scaling_cpu_bound(benchmark):
    from repro.experiments import format_fig3_procs, run_procs_sweep

    results = benchmark.pedantic(
        run_procs_sweep,
        kwargs=dict(proc_counts=(1, 2, 4), requests=256, clients=8),
        rounds=1, iterations=1)

    if (os.cpu_count() or 1) >= 4:
        # Only a multi-core host can cash the GIL-escape cheque; a
        # single core honestly reports ~1.0x and skips the floor.
        assert results[4].throughput >= 2.5 * results[1].throughput

    rows = [[str(p), f"{pt.throughput:.1f}",
             f"{pt.throughput / results[1].throughput:.2f}x"]
            for p, pt in sorted(results.items())]
    print()
    print(render_table(["procs", "thr/s", "speedup"], rows,
                       title="O16 — WORKER-PROCESS SCALING (CPU-bound "
                             "hook, 8 clients)"))
    print(format_fig3_procs(results))
