"""Fig 6 bench: response time with and without automatic overload
control (watermarks 20/5 on the reactive Event Processor queue, 50 ms
CPU-intensive decode).

Shape assertions (per the paper): "COPS-HTTP with the automatic overload
control capability has a significantly lower average response time.
Notably, this is achieved without degrading the server throughput."
"""

import pytest

from repro.experiments import format_fig6, run_fig6


def test_fig6_overload_control(benchmark):
    points = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    by_key = {(p.clients, p.overload_control): p for p in points}
    counts = sorted({p.clients for p in points})

    # Light load: control changes nothing.
    light = counts[0]
    assert by_key[(light, True)].response_mean == pytest.approx(
        by_key[(light, False)].response_mean, rel=0.15)

    # Overloaded: response time of established connections is
    # significantly lower with control...
    heavy = counts[-1]
    assert (by_key[(heavy, True)].response_mean
            < 0.5 * by_key[(heavy, False)].response_mean)

    # ... while throughput is not degraded ...
    assert (by_key[(heavy, True)].throughput
            > 0.9 * by_key[(heavy, False)].throughput)

    # ... and without control the response time keeps growing with load,
    # while with control it plateaus near the watermark-bounded level.
    mid = counts[-2]
    assert (by_key[(heavy, False)].response_mean
            > 1.5 * by_key[(mid, False)].response_mean)
    assert (by_key[(heavy, True)].response_mean
            < 1.5 * by_key[(mid, True)].response_mean)

    # Combined time (incl. connection establishment) stays comparable:
    # postponed clients wait outside instead of inside.
    assert by_key[(heavy, True)].combined_mean == pytest.approx(
        by_key[(heavy, False)].combined_mean, rel=0.35)

    print()
    print(format_fig6(points))
