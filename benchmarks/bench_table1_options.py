"""Table 1 bench: regenerate the N-Server option table and validate the
two application configurations by generating both frameworks."""

from repro.experiments import format_table1, run_table1


def test_table1_options(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    assert len(rows) == 12
    # Spot-check the paper's cells.
    by_key = {r[0].split(":")[0]: r for r in rows}
    assert by_key["O4"][2] == "Synchronous" and by_key["O4"][3] == "Asynchronous"
    assert by_key["O6"][2] == "No" and by_key["O6"][3] == "Yes: LRU"
    assert by_key["O5"][2] == "Dynamic" and by_key["O5"][3] == "Static"
    print()
    print(format_table1(rows))
