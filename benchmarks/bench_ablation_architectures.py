"""Ablation: server architectures from the paper's related-work section.

The N-Server's event-driven design against SPED (single-process
event-driven: blocking disk stalls the loop), MPED (Flash: helper
processes hide disk), SEDA (staged pipeline: pays thread switching when
stages x threads > CPUs) and Apache prefork — on the same simulated
hardware and workload.

Asserted claims:

* MPED beats SPED when the working set misses the caches (Pai et al.'s
  result, cited by the paper);
* the N-Server model at least matches SEDA (the paper's claim that
  SEDA's extra stages cost scheduling overhead);
* every event-driven variant stays fair at loads where prefork's
  connection cap bites.
"""

from repro.analysis import render_table
from repro.sim.testbed import TestbedConfig, run_testbed

ARCHITECTURES = ("cops", "apache", "sped", "mped", "seda")


def run_ablation():
    results = {}
    for server in ARCHITECTURES:
        # Heavy but un-gimmicked load; small caches so disk behaviour
        # differentiates SPED from MPED.
        cfg = TestbedConfig(server=server, clients=192, duration=30.0,
                            warmup=8.0, os_buffer_mb=8, app_cache_mb=8,
                            wan_delay=0.05)
        results[server] = run_testbed(cfg)
    return results


def test_architecture_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    assert results["mped"].throughput > 1.1 * results["sped"].throughput
    assert results["cops"].throughput >= 0.95 * results["seda"].throughput
    assert results["cops"].throughput > results["sped"].throughput
    for server in ("cops", "sped", "mped", "seda"):
        assert results[server].fairness > 0.9, server

    rows = [[name,
             f"{r.throughput:.1f}",
             f"{r.fairness:.3f}",
             f"{r.response_mean * 1000:.0f}",
             f"{r.cpu_utilization:.2f}",
             f"{r.os_buffer_hit_rate:.2f}"]
            for name, r in results.items()]
    print()
    print(render_table(
        ["architecture", "thr/s", "fairness", "resp ms", "cpu util",
         "os-buffer hit"],
        rows,
        title="ABLATION — SERVER ARCHITECTURES (192 clients, small caches)"))
