"""Table 4 bench: the COPS-HTTP code distribution.

The paper's headline: "If an existing HTTP protocol library were used
... only 785 lines of NCSS would need to be programmed, which accounts
for 20% of the total code of COPS-HTTP."  We assert the same structure:
generated code is the biggest category; the hand-written application
code is a minority share."""

from repro.experiments import format_table4, run_table4


def test_table4_http_code_distribution(benchmark):
    result = benchmark.pedantic(run_table4, rounds=3, iterations=1)
    c = result.categories
    assert c["Generated code"].ncss == max(m.ncss for m in c.values())
    assert result.application_fraction() < 0.3      # paper: 20%
    # generated share is the majority, as in the paper (2697/3931 = 69%)
    generated_share = c["Generated code"].ncss / result.total.ncss
    assert generated_share > 0.4
    print()
    print(format_table4(result))
