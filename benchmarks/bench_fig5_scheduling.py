"""Fig 5 bench: differentiated service levels via event scheduling.

Shape assertions (per the paper): "There is a small gap between the
ratio of priority levels and the actual throughput ratio of requests for
the two types of Web contents.  However, such a gap is quite
acceptable."  We assert the measured ratio tracks each configured quota
ratio within that gap, and that the portal-only column is the maximum.
"""

import pytest

from repro.experiments import format_fig5, run_fig5


def test_fig5_differentiated_service(benchmark):
    points, portal_only = benchmark.pedantic(
        run_fig5, rounds=1, iterations=1)

    for p in points:
        configured = p.configured_ratio
        if configured == 1.0:
            assert p.measured_ratio == pytest.approx(1.0, abs=0.2)
        else:
            # Tracks the quota with the paper's "small gap" (served ratio
            # never exceeds the configured one; lower because the server
            # does not schedule OS resources).
            assert p.measured_ratio > 0.55 * configured
            assert p.measured_ratio <= configured * 1.15

    # Monotone: more portal quota -> more portal throughput.
    portals = [p.portal_throughput for p in points]
    assert portals == sorted(portals)

    # Rightmost column: portal-only is the ceiling.
    assert portal_only >= max(portals) * 0.95

    print()
    print(format_fig5(points, portal_only))
