"""Ablation: overload-control watermark sensitivity.

The paper fixes high/low = 20/5 for Fig 6.  This bench sweeps the high
watermark and shows the trade: a lower watermark bounds response time
more tightly (fewer events queued ahead of you) at the same throughput,
until it becomes so tight that admission stalls starve the processors.
"""

from repro.analysis import render_table
from repro.sim.testbed import TestbedConfig, run_testbed

WATERMARKS = ((10, 3), (20, 5), (40, 10), (80, 20))


def run_sweep():
    results = {}
    for high, low in WATERMARKS:
        cfg = TestbedConfig(server="cops", clients=128, duration=25.0,
                            warmup=6.0, decode_extra_cpu=0.05,
                            overload=True, overload_high=high,
                            overload_low=low)
        results[(high, low)] = run_testbed(cfg)
    cfg = TestbedConfig(server="cops", clients=128, duration=25.0,
                        warmup=6.0, decode_extra_cpu=0.05, overload=False)
    results["off"] = run_testbed(cfg)
    return results


def test_watermark_sensitivity(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    off = results["off"]
    # Tighter watermarks -> lower response times, monotonically.
    resp = [results[w].response_mean for w in WATERMARKS]
    assert resp == sorted(resp)
    # All controlled configs beat no-control on response time...
    for w in WATERMARKS:
        assert results[w].response_mean < off.response_mean
        # ... without losing meaningful throughput.
        assert results[w].throughput > 0.85 * off.throughput

    rows = [[f"{w[0]}/{w[1]}" if w != "off" else "off",
             f"{r.throughput:.1f}",
             f"{r.response_mean*1000:.0f}",
             f"{r.combined_mean*1000:.0f}"]
            for w, r in results.items()]
    print()
    print(render_table(
        ["watermark hi/lo", "thr/s", "resp ms", "combined ms"], rows,
        title="ABLATION — OVERLOAD WATERMARKS (128 clients, 50 ms decode)"))
