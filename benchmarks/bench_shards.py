"""O14 bench: 1 vs 4 reactor shards under a Zipf (SpecWeb99) workload.

Two measurements:

* real sockets — the generated COPS-HTTP framework at O14=1 and O14=4
  serving a materialised SpecWeb99 file set to concurrent clients whose
  request paths follow the Zipf directory popularity (this is the
  BENCH_shards.json artifact CI uploads);
* simulation — the shard-count sweep behind the Fig 3 extension, under
  a CPU-bound configuration where the per-shard readiness-scan saving
  is visible.
"""

import os
import socket
import threading

import pytest

from repro.analysis import render_table
from repro.servers.cops_http import build_cops_http
from repro.workload import SpecWebFileSet

#: ``python -m repro.bench --smoke`` sets this: a shrunk workload whose
#: absolute times are meaningless but whose shard-speedup ratio still
#: moves when sharding breaks.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENTS = 2 if SMOKE else 4
REQUESTS_PER_CLIENT = 5 if SMOKE else 40


def materialise_fileset(root, total_mb=2.0, seed=3):
    """Write a small SpecWeb99 tree and return Zipf-ordered GET paths."""
    fileset = SpecWebFileSet(total_mb, zipf_alpha=1.0, seed=seed)
    for path, size in fileset.files():
        target = root / path.lstrip("/")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(b"x" * size)
    return [fileset.sample()[0]
            for _ in range(CLIENTS * REQUESTS_PER_CLIENT)]


def get(port, path):
    s = socket.create_connection(("127.0.0.1", port), timeout=10)
    s.settimeout(10)
    try:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: b\r\n"
                  "Connection: close\r\n\r\n".encode())
        data = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                return data
            data += chunk
    finally:
        s.close()


def drive(port, paths):
    """CLIENTS concurrent closed-loop clients, Zipf request streams."""
    per_client = len(paths) // CLIENTS
    failures = []

    def client(i):
        for path in paths[i * per_client:(i + 1) * per_client]:
            if not get(port, path).startswith(b"HTTP/1.1 200"):
                failures.append(path)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures[:3]


@pytest.mark.parametrize("shards", (1, 4))
def test_cops_http_shard_throughput(benchmark, tmp_path, shards):
    docroot = tmp_path / "docroot"
    docroot.mkdir()
    paths = materialise_fileset(docroot)
    server, _fw, _report = build_cops_http(
        str(docroot), dest=str(tmp_path / "build"),
        package=f"bench_shards_{shards}_fw", shards=shards)
    server.start()
    try:
        benchmark.pedantic(drive, args=(server.port, paths),
                           rounds=3, iterations=1, warmup_rounds=1)
    finally:
        server.stop()
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["requests"] = len(paths)


def test_shard_scaling_simulated(benchmark):
    from repro.experiments import format_fig3_shards, run_shard_sweep

    # SHARD_SWEEP_BASE is CPU-bound behind a wide pipe — the regime
    # where splitting the readiness scan across shards pays.
    results = benchmark.pedantic(
        run_shard_sweep,
        kwargs=dict(shard_counts=(1, 2, 4), clients=256,
                    duration=20.0, warmup=5.0),
        rounds=1, iterations=1)

    assert results[4].throughput > results[1].throughput
    for point in results.values():
        assert point.fairness > 0.9

    rows = [[str(s), f"{p.throughput:.1f}", f"{p.fairness:.3f}",
             f"{p.cpu_utilization:.2f}"]
            for s, p in sorted(results.items())]
    print()
    print(render_table(["shards", "thr/s", "fairness", "cpu"], rows,
                       title="O14 — REACTOR SHARD SCALING (CPU-bound, "
                             "256 clients)"))
    print(format_fig3_shards(results))
