"""Ablation: generated framework vs the static (runtime-configured)
framework, over real loopback sockets.

The paper argues generation beats a static framework because a static
one needs "a large amount of indirection code ... to dynamically decide
whether to execute the code for each feature".  Both paths exist here:
the generated COPS-HTTP-style framework and ``repro.runtime.
ReactorServer`` (the hand-wired, flag-checking assembly).  This bench
confirms the generated framework is functionally equivalent and at
least as fast on a loopback echo workload, and quantifies codegen cost.
"""

import socket
import tempfile
import time

from repro.co2p3s.nserver import NSERVER
from repro.co2p3s.template import load_generated_package
from repro.runtime import ReactorServer, RuntimeConfig, ServerHooks
from repro.servers import TIME_SERVER_OPTIONS


class EchoHooks(ServerHooks):
    def handle(self, request, conn):
        return request


def drive(port: int, seconds: float = 2.0) -> float:
    """Requests/s of a single pipelining client."""
    s = socket.create_connection(("127.0.0.1", port), timeout=5)
    s.settimeout(5)
    count = 0
    deadline = time.monotonic() + seconds
    payload = b"x" * 64 + b"\n"
    try:
        while time.monotonic() < deadline:
            s.sendall(payload)
            buf = b""
            while not buf.endswith(b"\n"):
                buf += s.recv(4096)
            count += 1
    finally:
        s.close()
    return count / seconds


def generate_framework():
    opts = NSERVER.configure(dict(TIME_SERVER_OPTIONS, O7=False))
    dest = tempfile.mkdtemp(prefix="ablate_gen_")
    NSERVER.generate(opts, dest, package="ablate_fw")
    return load_generated_package(dest, "ablate_fw")


def test_generated_vs_static(benchmark):
    gen_time0 = time.monotonic()
    fw = benchmark.pedantic(generate_framework, rounds=1, iterations=1)
    gen_time = time.monotonic() - gen_time0

    generated = fw.Server(EchoHooks())
    generated.start()
    try:
        gen_rate = drive(generated.port)
    finally:
        generated.stop()

    static = ReactorServer(EchoHooks(), RuntimeConfig(
        use_codec=False, async_completions=False))
    static.start()
    try:
        static_rate = drive(static.port)
    finally:
        static.stop()

    print(f"\ncodegen+import: {gen_time*1000:.0f} ms; "
          f"generated: {gen_rate:.0f} req/s; "
          f"static framework: {static_rate:.0f} req/s; "
          f"ratio {gen_rate/static_rate:.2f}x")

    assert gen_rate > 200          # functional and reasonably fast
    assert static_rate > 200
    # The generated framework (no dynamic feature checks) should not be
    # slower than the flag-checking static assembly beyond noise.
    assert gen_rate > 0.6 * static_rate
