"""Ablation: multiprocessor scaling of the N-Server design.

One of the paper's stated contributions is "performance that scales
well with multiple processors" — the Event Processor extension exists
precisely because a plain Reactor "does not scale up very well, because
all events are processed by one thread".

We sweep CPU count (processor pool sized to match) under a CPU-heavy
workload and assert near-linear scaling from 1 to 4 CPUs, plus the
single-thread-Reactor comparison (1 processor thread on a 4-CPU host
wastes the extra processors).
"""

from repro.analysis import render_table
from repro.sim.testbed import TestbedConfig, run_testbed


def run_scaling():
    results = {}
    for cpus in (1, 2, 4, 8):
        cfg = TestbedConfig(server="cops", clients=384, duration=25.0,
                            warmup=6.0, cpus=cpus, processor_threads=cpus,
                            cpu_per_request=0.010,   # CPU-bound regime
                            bandwidth_bps=400e6,     # network out of the way
                            wan_delay=0.05)
        results[cpus] = run_testbed(cfg)
    # Plain-Reactor configuration: one processor thread on 4 CPUs.
    cfg = TestbedConfig(server="cops", clients=384, duration=25.0,
                        warmup=6.0, cpus=4, processor_threads=1,
                        cpu_per_request=0.010, bandwidth_bps=400e6,
                        wan_delay=0.05)
    results["reactor-1thread"] = run_testbed(cfg)
    return results


def test_multiprocessor_scaling(benchmark):
    results = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    t1, t2, t4 = (results[n].throughput for n in (1, 2, 4))
    assert t2 > 1.6 * t1
    assert t4 > 2.7 * t1
    # A single processor thread cannot use 4 CPUs: the pool is the point.
    assert results["reactor-1thread"].throughput < 0.5 * t4

    rows = [[str(k), f"{r.throughput:.1f}", f"{r.cpu_utilization:.2f}"]
            for k, r in results.items()]
    print()
    print(render_table(["cpus (=pool threads)", "thr/s", "cpu util"], rows,
                       title="ABLATION — MULTIPROCESSOR SCALING "
                             "(CPU-bound, 384 clients)"))
