"""Fig 4 bench: service fairness (Jain index of per-client response
counts) across 1..1024 clients.

Shape assertions (per the paper): "Under heavy loads, the fairness index
of COPS-HTTP remains high, while Apache's fairness index drops
significantly.  With 1024 Web clients, the fairness index of Apache is a
mere 0.51."
"""

from repro.experiments import format_fig4


def _by_clients(points):
    return {p.clients: p for p in points}


def test_fig4_fairness(benchmark, capacity_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # sweep cached
    apache = _by_clients(capacity_sweep["apache"])
    cops = _by_clients(capacity_sweep["cops"])

    # Both fair while everyone fits.
    for n in (1, 16, 128):
        assert apache[n].fairness > 0.95, n
        assert cops[n].fairness > 0.95, n

    # COPS-HTTP stays fair under extreme load.
    assert cops[512].fairness > 0.9
    assert cops[1024].fairness > 0.9

    # Apache collapses once clients outnumber its 150 workers + backlog:
    assert apache[512].fairness < 0.9
    assert 0.25 < apache[1024].fairness < 0.65   # paper: 0.51
    assert apache[1024].fairness < apache[512].fairness

    # The collapse coincides with SYN drops (the TCP backoff mechanism).
    assert apache[1024].syn_drops > 0
    assert cops[1024].syn_drops == 0

    print()
    print(format_fig4(capacity_sweep))
