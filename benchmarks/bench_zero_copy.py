"""O15 bench: buffered vs zero-copy write path, large-file Zipf mix.

The copying write path re-materialises the whole unsent remainder on
every partial send (``bytes(out)`` + ``del out[:n]``) — quadratic in
body size over the flush — while the O15 path advances offsets into
pooled header buffers and body memoryviews.  On multi-hundred-KB
bodies the gap is large and stable; this bench measures it end to end
through real sockets (the BENCH_zero_copy.json artifact CI uploads)
and asserts the ratio the issue requires.
"""

import os
import socket
import threading
import time

import pytest

from repro.analysis import render_table
from repro.experiments.fig3_zerocopy import materialise_large_fileset
from repro.servers.cops_http import build_cops_http

#: ``python -m repro.bench --smoke`` sets this: a shrunk workload whose
#: absolute times are meaningless but whose buffered-vs-zerocopy ratio
#: still collapses if the O15 path starts copying again.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENTS = 2
REQUESTS_PER_CLIENT = 4 if SMOKE else 25
SPEEDUP_FLOOR = 1.3
#: Client receive window: a WAN-ish client that cannot absorb a 2 MB
#: body in one kernel gulp, so the server sees many partial sends —
#: exactly the regime where the copying path re-buffers quadratically.
CLIENT_RCVBUF = 65536


def get(port, path):
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, CLIENT_RCVBUF)
    s.settimeout(30)
    s.connect(("127.0.0.1", port))
    try:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: b\r\n"
                  "Connection: close\r\n\r\n".encode())
        data = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                return data
            data += chunk
    finally:
        s.close()


def drive(port, paths):
    """CLIENTS concurrent closed-loop clients over the Zipf sample."""
    per_client = len(paths) // CLIENTS
    failures = []

    def client(i):
        for path in paths[i * per_client:(i + 1) * per_client]:
            if not get(port, path).startswith(b"HTTP/1.1 200"):
                failures.append(path)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures[:3]


def start_server(docroot, builddir, write_path):
    server, _fw, _report = build_cops_http(
        str(docroot), dest=str(builddir),
        package=f"bench_wp_{write_path}_fw", write_path=write_path)
    server.start()
    return server


@pytest.fixture(scope="module")
def fileset(tmp_path_factory):
    docroot = tmp_path_factory.mktemp("docroot")
    paths = materialise_large_fileset(
        docroot, seed=11, requests=CLIENTS * REQUESTS_PER_CLIENT)
    return docroot, paths


@pytest.mark.parametrize("write_path", ("buffered", "zerocopy"))
def test_cops_http_write_path_throughput(benchmark, tmp_path, fileset,
                                         write_path):
    docroot, paths = fileset
    server = start_server(docroot, tmp_path / "build", write_path)
    try:
        benchmark.pedantic(drive, args=(server.port, paths),
                           rounds=3, iterations=1, warmup_rounds=1)
    finally:
        server.stop()
    benchmark.extra_info["write_path"] = write_path
    benchmark.extra_info["requests"] = len(paths)
    benchmark.extra_info["bytes"] = sum(
        (docroot / p.lstrip("/")).stat().st_size for p in paths)


def test_zero_copy_speedup(tmp_path, fileset):
    """The issue's acceptance ratio: zerocopy >= 1.3x buffered on the
    large-file mix (best-of-3 per path to shed scheduler noise)."""
    docroot, paths = fileset
    best = {}
    for write_path in ("buffered", "zerocopy"):
        server = start_server(docroot, tmp_path / write_path, write_path)
        try:
            drive(server.port, paths)          # warmup (cache, allocator)
            times = []
            for _ in range(3):
                started = time.monotonic()
                drive(server.port, paths)
                times.append(time.monotonic() - started)
            best[write_path] = min(times)
        finally:
            server.stop()

    ratio = best["buffered"] / best["zerocopy"]
    rows = [[wp, f"{t:.3f}", f"{len(paths) / t:.1f}"]
            for wp, t in sorted(best.items())]
    print()
    print(render_table(["write path", "best s", "resp/s"], rows,
                       title="O15 — BUFFERED vs ZERO-COPY WRITE PATH "
                             f"(ratio {ratio:.2f}x)"))
    assert ratio >= SPEEDUP_FLOOR, (
        f"zerocopy only {ratio:.2f}x over buffered; floor is "
        f"{SPEEDUP_FLOOR}x")
