"""Shared benchmark fixtures.

The Fig 3 and Fig 4 benches share one capacity sweep (in the paper both
figures come from the same experiment), cached at session scope so the
expensive sweep runs once.
"""

import pytest

from repro.experiments import run_capacity_sweep

#: the paper's client axis (log scale, 1..1024)
CLIENT_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@pytest.fixture(scope="session")
def capacity_sweep():
    return run_capacity_sweep(client_counts=CLIENT_COUNTS,
                              duration=40.0, warmup=10.0)
