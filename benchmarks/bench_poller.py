"""O18 bench: select vs epoll under a mostly-idle connection swarm.

The level-triggered ``select`` oracle pays O(registered fds) in the
kernel on every dispatcher wake-up; edge-triggered ``epoll`` pays
O(ready).  With a couple thousand parked connections and a small
active core hammering small files, the backend is the only thing that
differs between the two generated servers (same template, option O18
flipped), so the throughput gap is attributable to the readiness
machinery alone.  This bench measures it end to end through real
sockets (the BENCH_poller.json artifact CI gates on) and asserts the
ratio the issue requires.
"""

import os
import time

import pytest

from repro.experiments.fig3_poller import (
    IdleSwarm,
    _drive,
    _pinned_backend,
    materialise_small_fileset,
)
from repro.runtime import available_pollers
from repro.servers.cops_http import build_cops_http

#: ``python -m repro.bench --smoke`` sets this: a shrunk swarm whose
#: absolute times are meaningless but whose select-vs-epoll ratio still
#: collapses if the epoll path degenerates to scanning.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
IDLE_COUNTS = (0, 128) if SMOKE else (0, 2048)
ACTIVE_CLIENTS = 4
REQUESTS = 120 if SMOKE else 400
SPEEDUP_FLOOR = 1.3

POLLERS = available_pollers()


def start_server(docroot, builddir, poller):
    with _pinned_backend(poller):
        server, _fw, _report = build_cops_http(
            str(docroot), dest=str(builddir),
            package=f"bench_poller_{poller}_fw", poller=poller)
        server.start()
    return server


@pytest.fixture(scope="module")
def fileset(tmp_path_factory):
    docroot = tmp_path_factory.mktemp("docroot")
    paths = materialise_small_fileset(docroot, seed=11, requests=REQUESTS)
    return docroot, paths


@pytest.mark.parametrize("idle", IDLE_COUNTS)
@pytest.mark.parametrize("poller", POLLERS)
def test_cops_http_poller_throughput(benchmark, tmp_path, fileset,
                                     poller, idle):
    docroot, paths = fileset
    server = start_server(docroot, tmp_path / "build", poller)
    swarm = IdleSwarm(server.port, idle)
    try:
        _drive(server.port, paths[:len(paths) // 3], ACTIVE_CLIENTS)
        benchmark.pedantic(_drive,
                           args=(server.port, paths, ACTIVE_CLIENTS),
                           rounds=3, iterations=1, warmup_rounds=1)
    finally:
        swarm.close()
        server.stop()
    benchmark.extra_info["poller"] = poller
    benchmark.extra_info["idle_connections"] = idle
    benchmark.extra_info["requests"] = len(paths)


@pytest.mark.skipif("epoll" not in POLLERS,
                    reason="no select.epoll on this platform")
def test_epoll_speedup_under_idle_swarm(tmp_path, fileset):
    """The issue's acceptance ratio: epoll >= 1.3x select throughput at
    the largest mostly-idle swarm (best-of-3 per backend to shed
    scheduler noise)."""
    docroot, paths = fileset
    idle = max(IDLE_COUNTS)
    best = {}
    for poller in ("select", "epoll"):
        server = start_server(docroot, tmp_path / poller, poller)
        swarm = IdleSwarm(server.port, idle)
        try:
            _drive(server.port, paths, ACTIVE_CLIENTS)  # warmup
            times = []
            for _ in range(3):
                started = time.monotonic()
                _drive(server.port, paths, ACTIVE_CLIENTS)
                times.append(time.monotonic() - started)
            best[poller] = min(times)
        finally:
            swarm.close()
            server.stop()
    speedup = best["select"] / best["epoll"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"epoll {speedup:.2f}x select at {idle} idle connections "
        f"(floor {SPEEDUP_FLOOR}x); best times {best}")
