"""Fig 3 bench: COPS-HTTP vs Apache throughput across 1..1024 clients.

Shape assertions (who wins where, per the paper):

* light load (<= 8 clients): Apache at least matches COPS-HTTP;
* 64..512 clients: COPS-HTTP ahead;
* both saturate beyond 256 (plateau: the bottleneck resource binds);
* 1024 clients: Apache slightly ahead again (at the expense of
  fairness — asserted in the Fig 4 bench).
"""

from repro.experiments import format_fig3


def _by_clients(points):
    return {p.clients: p for p in points}


def test_fig3_throughput(benchmark, capacity_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # sweep cached
    apache = _by_clients(capacity_sweep["apache"])
    cops = _by_clients(capacity_sweep["cops"])

    # Region A: light load, Apache slightly better (or equal).
    for n in (1, 2, 4, 8):
        assert apache[n].throughput >= cops[n].throughput * 0.97, n

    # Region B: heavier load, COPS-HTTP clearly ahead.
    for n in (64, 128, 256, 512):
        assert cops[n].throughput > apache[n].throughput * 1.05, n

    # Region C: saturation — Apache's plateau is flat from 256 to 1024.
    assert apache[1024].throughput < apache[256].throughput * 1.1
    assert apache[1024].throughput > apache[256].throughput * 0.9
    # COPS saturates too (512 within 10% of 256).
    assert cops[512].throughput > cops[256].throughput * 0.9

    # At 1024 Apache comes out slightly ahead (the fairness trade).
    assert apache[1024].throughput > cops[1024].throughput

    print()
    print(format_fig3(capacity_sweep))
