"""Ablation: the five O6 cache replacement policies on the SpecWeb99
access distribution (the paper offers LRU, LFU, LRU-MIN, LRU-Threshold,
Hyper-G; COPS-HTTP ships with LRU).

Also measures the end-to-end effect: COPS-HTTP with the LRU cache vs
with no application cache at all.
"""

from repro.analysis import render_table
from repro.cache import Cache, make_policy
from repro.sim.testbed import TestbedConfig, run_testbed
from repro.workload import SpecWebFileSet

POLICY_KWARGS = {"LRU-Threshold": {"threshold": 100_000}}


def run_policy_sweep(cache_mb: int = 20, accesses: int = 60_000):
    fileset = SpecWebFileSet(204.8, seed=11)
    hit_rates = {}
    for name in ("LRU", "LFU", "LRU-MIN", "LRU-Threshold", "Hyper-G"):
        cache = Cache(capacity=cache_mb * 1024 * 1024,
                      policy=make_policy(name, **POLICY_KWARGS.get(name, {})))
        for _ in range(accesses):
            path, size = fileset.sample()
            if cache.get(path) is None:
                cache.put(path, size)
        hit_rates[name] = cache.stats.hit_rate
    return hit_rates


def test_cache_policy_ablation(benchmark):
    hit_rates = benchmark.pedantic(run_policy_sweep, rounds=1, iterations=1)

    # Every policy caches *something* useful on a Zipf workload.
    for name, rate in hit_rates.items():
        assert 0.3 < rate < 0.999, (name, rate)
    # LRU-Threshold refuses the big class-3 files, keeping more small
    # popular files: at this cache size it should not lose to plain LRU.
    assert hit_rates["LRU-Threshold"] >= hit_rates["LRU"] - 0.02

    rows = [[name, f"{rate:.3f}"] for name, rate in
            sorted(hit_rates.items(), key=lambda kv: -kv[1])]
    print()
    print(render_table(["policy", "hit rate"], rows,
                       title="ABLATION — O6 POLICIES ON SPECWEB99 "
                             "(20 MB cache / 205 MB set)"))

    # End-to-end: cache on vs off.
    with_cache = run_testbed(TestbedConfig(server="cops", clients=128,
                                           duration=20.0, warmup=5.0))
    without = run_testbed(TestbedConfig(server="cops", clients=128,
                                        duration=20.0, warmup=5.0,
                                        cache_policy=None))
    print(f"\nCOPS-HTTP @128 clients: LRU cache {with_cache.throughput:.1f}/s "
          f"(resp {with_cache.response_mean*1000:.0f} ms)  vs  no cache "
          f"{without.throughput:.1f}/s (resp {without.response_mean*1000:.0f} ms)")
    assert with_cache.response_mean <= without.response_mean * 1.05
