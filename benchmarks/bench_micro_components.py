"""Micro-benchmarks of the core data structures.

Not a paper figure — performance tracking for the building blocks every
experiment leans on: cache lookups, quota-queue operations, HTTP
parsing, codegen, and the DES kernel's event rate.
"""

from repro.cache import Cache, make_policy
from repro.co2p3s.nserver import COPS_HTTP_OPTIONS, NSERVER
from repro.http import parse_request, split_request
from repro.runtime import QuotaPriorityQueue
from repro.sim import Simulator
from repro.workload import SpecWebFileSet


def test_cache_get_put_rate(benchmark):
    fileset = SpecWebFileSet(50, seed=5)
    accesses = [fileset.sample() for _ in range(5000)]
    cache = Cache(capacity=8 * 1024 * 1024, policy=make_policy("LRU"))

    def run():
        for path, size in accesses:
            if cache.get(path) is None:
                cache.put(path, size)

    benchmark(run)
    assert cache.stats.lookups > 0


def test_quota_queue_throughput(benchmark):
    queue = QuotaPriorityQueue({0: 1, 1: 4})

    def run():
        for i in range(2000):
            queue.push(i, priority=i & 1)
        for _ in range(2000):
            queue.try_pop()

    benchmark(run)
    assert len(queue) == 0


def test_http_parse_rate(benchmark):
    wire = (b"GET /dir/page.html?q=1 HTTP/1.1\r\n"
            b"Host: example.test\r\n"
            b"Accept: text/html\r\n"
            b"User-Agent: bench\r\n\r\n")

    def run():
        for _ in range(1000):
            framed, _ = split_request(wire)
            parse_request(framed)

    benchmark(run)


def test_nserver_codegen_rate(benchmark):
    opts = NSERVER.configure(COPS_HTTP_OPTIONS)
    report = benchmark(lambda: NSERVER.render(opts, package="bench"))
    assert report.files


def test_des_kernel_event_rate(benchmark):
    def run():
        sim = Simulator()

        def ping_pong(n):
            for _ in range(n):
                yield sim.timeout(0.001)

        for _ in range(20):
            sim.process(ping_pong(500))
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events >= 10_000
