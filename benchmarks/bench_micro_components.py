"""Micro-benchmarks of the core data structures.

Not a paper figure — performance tracking for the building blocks every
experiment leans on: cache lookups, quota-queue operations, HTTP
parsing, codegen, the DES kernel's event rate, and the observability
hot path (profiler counters, span recording).
"""

import threading
import time

from repro.cache import Cache, make_policy
from repro.co2p3s.nserver import COPS_HTTP_OPTIONS, NSERVER
from repro.http import parse_request, split_request
from repro.obs import MetricsRegistry, SpanRecorder
from repro.runtime import NULL_PROFILER, Profiler, QuotaPriorityQueue
from repro.sim import Simulator
from repro.workload import SpecWebFileSet


def test_cache_get_put_rate(benchmark):
    fileset = SpecWebFileSet(50, seed=5)
    accesses = [fileset.sample() for _ in range(5000)]
    cache = Cache(capacity=8 * 1024 * 1024, policy=make_policy("LRU"))

    def run():
        for path, size in accesses:
            if cache.get(path) is None:
                cache.put(path, size)

    benchmark(run)
    assert cache.stats.lookups > 0


def test_quota_queue_throughput(benchmark):
    queue = QuotaPriorityQueue({0: 1, 1: 4})

    def run():
        for i in range(2000):
            queue.push(i, priority=i & 1)
        for _ in range(2000):
            queue.try_pop()

    benchmark(run)
    assert len(queue) == 0


def test_http_parse_rate(benchmark):
    wire = (b"GET /dir/page.html?q=1 HTTP/1.1\r\n"
            b"Host: example.test\r\n"
            b"Accept: text/html\r\n"
            b"User-Agent: bench\r\n\r\n")

    def run():
        for _ in range(1000):
            framed, _ = split_request(wire)
            parse_request(framed)

    benchmark(run)


def test_nserver_codegen_rate(benchmark):
    opts = NSERVER.configure(COPS_HTTP_OPTIONS)
    report = benchmark(lambda: NSERVER.render(opts, package="bench"))
    assert report.files


def test_des_kernel_event_rate(benchmark):
    def run():
        sim = Simulator()

        def ping_pong(n):
            for _ in range(n):
                yield sim.timeout(0.001)

        for _ in range(20):
            sim.process(ping_pong(500))
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events >= 10_000


# -- observability hot path ---------------------------------------------------
#
# The read/send byte-accounting calls are the hottest instrumentation
# sites in the server.  Three variants: the inert NullProfiler (O11=No
# floor), a single-lock profiler (the pre-registry design, kept here as
# the "before" of the lock-contention fix), and the registry-backed
# Profiler whose per-counter locks let concurrent updates of different
# counters proceed without contending.


class _SingleLockProfiler:
    """The old design: every counter update serialises on one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._bytes_read = 0
        self._bytes_sent = 0
        self._requests = 0
        self.start_time = time.monotonic()

    def bytes_read(self, n):
        with self._lock:
            self._bytes_read += n

    def bytes_sent(self, n):
        with self._lock:
            self._bytes_sent += n

    def request_handled(self):
        with self._lock:
            self._requests += 1


def _hammer(profiler, threads=4, ops=5_000):
    """The communicator hot path, concurrently: read, send, account."""
    barrier = threading.Barrier(threads)

    def worker():
        barrier.wait()
        for _ in range(ops):
            profiler.bytes_read(4096)
            profiler.bytes_sent(8192)
            profiler.request_handled()

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()


def test_profiler_null_baseline(benchmark):
    benchmark(lambda: _hammer(NULL_PROFILER))
    assert not NULL_PROFILER.enabled


def test_profiler_single_lock_before(benchmark):
    def run():
        _hammer(_SingleLockProfiler())

    benchmark(run)


def test_profiler_registry_after(benchmark):
    def run():
        profiler = Profiler()
        _hammer(profiler)
        return profiler

    profiler = benchmark(run)
    assert profiler.registry.value("server_requests_total") == 20_000


def test_span_recording_rate(benchmark):
    recorder = SpanRecorder(MetricsRegistry())

    def run():
        for _ in range(2_000):
            span = recorder.start("request")
            with span.stage("decode"):
                pass
            with span.stage("handle"):
                pass
            with span.stage("encode"):
                pass
            span.finish()

    benchmark(run)
    total = recorder.registry.get("server_request_seconds").labels()
    assert total.count >= 2_000
