"""A tour of the generative mechanism: how options crosscut the code.

Generates the N-Server framework at different option settings and shows
(1) which classes exist only under certain options, (2) how one class's
code changes when a crosscutting option (debug mode) toggles, and (3)
the empirical Table 2 matrix.

Run:  python examples/codegen_tour.py
"""

import difflib

from repro.co2p3s.crosscut import empirical_matrix, format_matrix
from repro.co2p3s.nserver import (ALL_FEATURES_ON, DEGRADATION_TOGGLE_BASE,
                                  DEPLOYMENT_TOGGLE_BASE, NSERVER,
                                  POOL_TOGGLE_BASE)


def main() -> None:
    base = NSERVER.configure(ALL_FEATURES_ON)

    # 1. Existence: O4=Synchronous removes the completion machinery.
    async_report = NSERVER.render(base, package="tour")
    sync_report = NSERVER.render(base.replace(O4="Synchronous"),
                                 package="tour")
    gone = set(async_report.class_names()) - set(sync_report.class_names())
    print("classes that exist only with O4=Asynchronous:")
    for name in sorted(gone):
        print(f"  {name}")

    # 2. Body change: toggling O10 (debug mode) rewrites the trace lines
    # out of the AcceptorEventHandler.
    debug_src = async_report.find_class("AcceptorEventHandler").source
    prod_src = NSERVER.render(base.replace(O10="Production"),
                              package="tour").find_class(
                                  "AcceptorEventHandler").source
    print("\nAcceptorEventHandler, Debug -> Production diff:")
    for line in difflib.unified_diff(debug_src.splitlines(),
                                     prod_src.splitlines(),
                                     lineterm="", n=0):
        if line.startswith(("+", "-")) and not line.startswith(("+++", "---")):
            print(f"  {line}")

    # 3. The whole Table 2, computed by generate-and-diff.
    print()
    matrix = empirical_matrix(NSERVER, ALL_FEATURES_ON,
                              extra_bases=(POOL_TOGGLE_BASE,
                                           DEGRADATION_TOGGLE_BASE,
                                           DEPLOYMENT_TOGGLE_BASE))
    print(format_matrix(matrix, title="Empirical crosscut matrix (Table 2):"))


if __name__ == "__main__":
    main()
