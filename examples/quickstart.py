"""Quickstart: generate a server framework and talk to it.

The CO2P3S workflow in five steps:

1. pick the N-Server pattern template;
2. set its options (here: the minimal Time-server column);
3. generate the framework package;
4. write the hook methods (one, for a time server);
5. run it.

Run:  python examples/quickstart.py
"""

import socket
import tempfile
import time

from repro.co2p3s.nserver import NSERVER
from repro.co2p3s.template import load_generated_package
from repro.runtime import ServerHooks
from repro.servers import TIME_SERVER_OPTIONS


class TimeHooks(ServerHooks):
    """The application: everything else is generated or library code."""

    def handle(self, request: bytes, conn) -> bytes:
        return time.strftime("%Y-%m-%d %H:%M:%S\n").encode()


def main() -> None:
    # 1-2: configure the template.
    opts = NSERVER.configure(TIME_SERVER_OPTIONS)

    # 3: generate the framework package.
    dest = tempfile.mkdtemp(prefix="quickstart_")
    report = NSERVER.generate(opts, dest, package="quickstart_fw")
    print(f"generated {len(report.files)} modules, "
          f"{len(report.classes)} classes, {report.total_lines} lines "
          f"-> {report.dest}")
    for name in report.files:
        print(f"  {name}")

    # 4-5: instantiate with our hooks and run it.
    fw = load_generated_package(dest, "quickstart_fw")
    server = fw.Server(TimeHooks())
    server.start()
    print(f"\ntime server listening on 127.0.0.1:{server.port}")

    try:
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=3) as s:
            s.settimeout(3)
            s.sendall(b"what time is it?\n")
            reply = b""
            while not reply.endswith(b"\n"):
                reply += s.recv(1024)
        print(f"server says: {reply.decode().strip()}")
    finally:
        server.stop()
    print("done.")


if __name__ == "__main__":
    main()
