"""Fault injection vs the O13 resilience runtime: generate COPS-HTTP
with fault tolerance on, then attack it with a seeded fault storm —
injected handler exceptions, a slow-loris peer, a mid-stream RST —
while healthy requests keep getting served.  Finish with a graceful
drain and print the resilience counters.

Everything the plane injects is drawn from per-connection streams
derived from one seed, so a run's fault pattern is exactly replayable.

Run:  python examples/fault_injection.py
"""

import os
import socket
import tempfile
import time

from repro.co2p3s.nserver import COPS_HTTP_RESILIENCE_OPTIONS
from repro.faults import FaultPlane, FaultSpec, abrupt_reset, trickle_send
from repro.servers.cops_http import CopsHttpHooks, build_cops_http

SEED = 11


def make_site() -> str:
    root = tempfile.mkdtemp(prefix="cops_faults_")
    with open(os.path.join(root, "index.html"), "w") as fh:
        fh.write("<html><body>still standing</body></html>")
    return root


def get(port: int, path: str) -> bytes:
    """One-shot GET; b'' means the server dropped the connection."""
    try:
        s = socket.create_connection(("127.0.0.1", port), timeout=5)
    except OSError:
        return b""
    s.settimeout(5)
    data = b""
    try:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: demo\r\n"
                  "Connection: close\r\n\r\n".encode())
        while chunk := s.recv(65536):
            data += chunk
    except OSError:
        pass
    finally:
        s.close()
    return data


def main() -> None:
    plane = FaultPlane(FaultSpec(handler_error=0.3), seed=SEED)
    server, _fw, report = build_cops_http(
        make_site(),
        options=COPS_HTTP_RESILIENCE_OPTIONS,   # O11 + O13
        hooks=plane.wrap_hooks(CopsHttpHooks()),
        header_timeout=0.4,
        deadline_interval=0.02,
    )
    plane.install(server)
    server.start()
    print(f"COPS-HTTP (O11+O13, fault seed {SEED}) "
          f"on 127.0.0.1:{server.port}, "
          f"{len(report.classes)} generated classes\n")

    resilience = server.reactor.resilience
    try:
        print("-- 10 requests through a 30% handler-fault schedule --")
        ok = dropped = 0
        for i in range(10):
            response = get(server.port, "/index.html")
            if response.startswith(b"HTTP/1.1 200"):
                ok += 1
            else:
                dropped += 1
            print(f"  GET #{i}: "
                  f"{'200 OK' if response else 'dropped (injected fault)'}")
        print(f"  served {ok}, dropped {dropped} "
              f"(plane log: {plane.counts()})\n")

        print("-- slow-loris peer vs the 0.4 s header deadline --")
        loris = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        sent = trickle_send(loris, b"GET / HTTP/1.1\r\nHost: demo\r\n\r\n",
                            chunk=1, delay=0.05,
                            deadline=time.monotonic() + 5.0)
        loris.close()
        deadline = time.monotonic() + 5
        while resilience.deadlines.timed_out == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        print(f"  trickled {sent} bytes before the server hung up; "
              f"deadline timeouts: {resilience.deadlines.timed_out} "
              f"({dict(resilience.deadlines.reasons)})\n")

        print("-- mid-stream RST, then a healthy request --")
        rst = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        rst.sendall(b"GET /ind")
        abrupt_reset(rst)
        response = b""
        for _ in range(6):                # retry past injected faults
            response = get(server.port, "/index.html")
            if response.startswith(b"HTTP/1.1 200"):
                break
        print(f"  after the reset: "
              f"{response.splitlines()[0].decode() if response else 'dropped'}\n")

        print("-- /server-status?auto resilience counters --")
        status = b""
        for _ in range(6):                # the status GET draws faults too
            status = get(server.port, "/server-status?auto")
            if status.startswith(b"HTTP/1.1 200"):
                break
        body = status.split(b"\r\n\r\n", 1)[1].decode() if status else ""
        for line in body.splitlines():
            if line.startswith(("server_deadline", "server_worker",
                                "server_quarantined", "server_accept")):
                print(f"  {line}")

        print("\n-- graceful drain --")
        print(f"  server.drain() -> {server.drain()}")
    except Exception:
        server.stop()
        raise
    print("done.")


if __name__ == "__main__":
    main()
