"""COPS-Mail: the mail server the paper names as another N-Server use,
driven by the standard library's smtplib.

Run:  python examples/mail_server.py
"""

import smtplib
import time

from repro.servers import build_mail_server


def main() -> None:
    server, store, fw = build_mail_server()
    server.start()
    print(f"COPS-Mail listening on 127.0.0.1:{server.port}\n")
    try:
        client = smtplib.SMTP("127.0.0.1", server.port, timeout=5)
        code, caps = client.ehlo("example-client")
        print(f"EHLO -> {code}\n{caps.decode()}")
        client.sendmail(
            "alice@example.org",
            ["bob@example.net", "carol@example.net"],
            "Subject: generative patterns\r\n\r\n"
            "The framework handling this message was generated\r\n"
            "from the N-Server template.\r\n",
        )
        client.quit()
        time.sleep(0.2)

        for rcpt in ("bob@example.net", "carol@example.net"):
            msgs = store.messages_for(rcpt)
            print(f"\nmailbox {rcpt}: {len(msgs)} message(s)")
            print(f"  from: {msgs[0].sender}")
            print(f"  body: {msgs[0].body.decode().splitlines()[-1]}")

        print("\nserver log (option O12):")
        for line in server.reactor.log.lines[:4]:
            print(" ", line)
    finally:
        server.stop()
    print("done.")


if __name__ == "__main__":
    main()
