"""Differentiated service levels (the Fig 5 scenario) in miniature.

An ISP hosts a corporate portal and personal homepages on one COPS-HTTP
server.  Event scheduling (template option O8) gives portal traffic a
larger quota in the reactive event queue; the measured throughput ratio
tracks the configured quota ratio.

Run:  python examples/differentiated_service.py   (~20 s, simulated)
"""

from repro.experiments import format_fig5, run_fig5


def main() -> None:
    print("running the differentiated-service experiment "
          "(simulated dual-CPU host, caching disabled)...\n")
    points, portal_only = run_fig5(ratios=((1, 1), (1, 2), (1, 4)),
                                   clients=176, duration=15.0, warmup=4.0)
    print(format_fig5(points, portal_only))
    print("\nReading the table: with quota 1/4 the portal receives ~4x the"
          "\nhomepage throughput — the scheduling policy cost 13 lines of"
          "\napplication code in the paper, and one hook override here"
          "\n(see repro.servers.cops_http.PriorityByPeerHooks).")


if __name__ == "__main__":
    main()
