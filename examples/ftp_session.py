"""COPS-FTP over real sockets, driven by the standard library ftplib.

The server reuses the FTP library (session machine, virtual filesystem,
user registry), generates its event-driven framework from the N-Server
template (Table 1 COPS-FTP column: synchronous completions, dynamic
thread allocation, idle shutdown), and adds only the thin adapter in
repro.servers.cops_ftp — the Table 3 story.

Run:  python examples/ftp_session.py
"""

import ftplib
import io

from repro.ftp import User, UserRegistry, VirtualFS
from repro.servers import build_cops_ftp


def main() -> None:
    fs = VirtualFS()
    fs.makedirs("/pub/papers")
    fs.write_file("/pub/README", b"Welcome to COPS-FTP (repro).\n")
    fs.write_file("/pub/papers/nserver.txt",
                  b"Using Generative Design Patterns to Develop "
                  b"Network Server Applications\n")
    fs.makedirs("/home/alice")
    users = UserRegistry()  # anonymous enabled by default
    users.add(User(name="alice", password="wonderland",
                   home="/home/alice"))

    server, fw, report = build_cops_ftp(fs=fs, users=users)
    server.start()
    print(f"COPS-FTP listening on 127.0.0.1:{server.port}\n")

    try:
        # Anonymous browse + download.
        ftp = ftplib.FTP()
        ftp.connect("127.0.0.1", server.port, timeout=5)
        print("banner:", ftp.getwelcome())
        ftp.login("anonymous", "guest@")
        print("cwd:", ftp.pwd())
        print("listing:")
        ftp.retrlines("LIST", lambda line: print("  " + line))
        buf = io.BytesIO()
        ftp.retrbinary("RETR README", buf.write)
        print("README:", buf.getvalue().decode().strip())
        ftp.quit()

        # Authenticated upload.
        ftp = ftplib.FTP()
        ftp.connect("127.0.0.1", server.port, timeout=5)
        ftp.login("alice", "wonderland")
        ftp.storbinary("STOR notes.txt", io.BytesIO(b"event-driven!\n"))
        import time

        time.sleep(0.2)  # data transfer completes asynchronously
        print("\nalice uploaded notes.txt ->",
              fs.read_file("/home/alice/notes.txt").decode().strip())
        ftp.quit()
    finally:
        server.stop()
    print("done.")


if __name__ == "__main__":
    main()
