"""Automatic overload control (the Fig 6 scenario) in miniature.

The decode step burns 50 ms per request, making the CPU the bottleneck.
With option O9, the generated acceptor postpones new connections while
the reactive Event Processor queue is over its high watermark (20),
resuming below the low watermark (5) — so established connections keep
a low response time without losing throughput.

Run:  python examples/overload_control.py   (~20 s, simulated)
"""

from repro.experiments import format_fig6, run_fig6


def main() -> None:
    print("running the overload-control experiment "
          "(50 ms decode, watermarks 20/5)...\n")
    points = run_fig6(client_counts=(4, 32, 96), duration=15.0, warmup=4.0)
    print(format_fig6(points))
    print("\nReading the table: without control, the response time of"
          "\nestablished connections grows with the client count; with"
          "\ncontrol it plateaus — at unchanged throughput.  The combined"
          "\ntime (including connection establishment) is similar either"
          "\nway: postponed clients wait outside instead of inside.")


if __name__ == "__main__":
    main()
